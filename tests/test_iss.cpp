// Functional ISS tests: RV32IM semantics, FP semantics (incl. NaN boxing,
// min/max, conversions), CSRs, SSR streams, FREP hardware loops, and scalar
// chaining architectural behaviour, all through assembled programs.
#include <gtest/gtest.h>

#include <cmath>

#include "asm/assembler.hpp"
#include "asm/builder.hpp"
#include "iss/exec_semantics.hpp"
#include "iss/iss.hpp"
#include "mem/memory.hpp"

namespace sch {
namespace {

constexpr Addr kD = memmap::kTcdmBase;

Program prog(std::string_view src) {
  auto r = assembler::assemble(src);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

struct RunResult {
  HaltReason halt;
  ArchState state;
  std::string error;
  u64 instret;
};

RunResult run_src(std::string_view src, Memory& mem) {
  const Program p = prog(src);
  Iss iss(p, mem);
  const HaltReason h = iss.run();
  return {h, iss.state(), iss.error(), iss.instret()};
}

RunResult run_src(std::string_view src) {
  Memory mem;
  return run_src(src, mem);
}

TEST(IssInt, ArithmeticAndHalt) {
  const auto r = run_src(R"(
    li a0, 20
    li a1, 22
    add a2, a0, a1
    ecall
  )");
  EXPECT_EQ(r.halt, HaltReason::kEcall);
  EXPECT_EQ(r.state.x[isa::kA2], 42u);
}

TEST(IssInt, LoopSum) {
  const auto r = run_src(R"(
    li a0, 0
    li a1, 10
loop:
    add a0, a0, a1
    addi a1, a1, -1
    bnez a1, loop
    ecall
  )");
  EXPECT_EQ(r.state.x[isa::kA0], 55u);
}

TEST(IssInt, MulDivEdgeCases) {
  const auto r = run_src(R"(
    li a0, -7
    li a1, 2
    div a2, a0, a1      # -3
    rem a3, a0, a1      # -1
    li a4, 0
    div a5, a0, a4      # div by zero -> -1
    rem a6, a0, a4      # rem by zero -> a0
    li t0, 0x80000000
    li t1, -1
    div t2, t0, t1      # overflow -> dividend
    mulhu t3, t0, t0
    ecall
  )");
  EXPECT_EQ(static_cast<i32>(r.state.x[isa::kA2]), -3);
  EXPECT_EQ(static_cast<i32>(r.state.x[isa::kA3]), -1);
  EXPECT_EQ(r.state.x[isa::kA5], 0xFFFF'FFFFu);
  EXPECT_EQ(r.state.x[isa::kA6], static_cast<u32>(-7));
  EXPECT_EQ(r.state.x[isa::kT2], 0x8000'0000u);
  EXPECT_EQ(r.state.x[isa::kT3], 0x4000'0000u);
}

TEST(IssInt, ShiftsAndCompares) {
  const auto r = run_src(R"(
    li a0, -8
    srai a1, a0, 2      # -2
    srli a2, a0, 28     # 0xF
    slli a3, a0, 1      # -16
    slti a4, a0, 0      # 1
    sltiu a5, a0, 1     # 0 (unsigned huge)
    ecall
  )");
  EXPECT_EQ(static_cast<i32>(r.state.x[isa::kA1]), -2);
  EXPECT_EQ(r.state.x[isa::kA2], 0xFu);
  EXPECT_EQ(static_cast<i32>(r.state.x[isa::kA3]), -16);
  EXPECT_EQ(r.state.x[isa::kA4], 1u);
  EXPECT_EQ(r.state.x[isa::kA5], 0u);
}

TEST(IssInt, X0StaysZero) {
  const auto r = run_src(R"(
    li t0, 99
    addi x0, t0, 1
    mv a0, x0
    ecall
  )");
  EXPECT_EQ(r.state.x[0], 0u);
  EXPECT_EQ(r.state.x[isa::kA0], 0u);
}

TEST(IssInt, MemoryByteHalfWord) {
  const auto r = run_src(R"(
    .data
buf: .zero 16
    .text
    la a0, buf
    li t0, -2
    sb t0, 0(a0)
    lb t1, 0(a0)        # sign-extended
    lbu t2, 0(a0)       # zero-extended
    li t0, -3
    sh t0, 4(a0)
    lh t3, 4(a0)
    lhu t4, 4(a0)
    ecall
  )");
  EXPECT_EQ(static_cast<i32>(r.state.x[isa::kT1]), -2);
  EXPECT_EQ(r.state.x[isa::kT2], 0xFEu);
  EXPECT_EQ(static_cast<i32>(r.state.x[isa::kT3]), -3);
  EXPECT_EQ(r.state.x[isa::kT4], 0xFFFDu);
}

TEST(IssInt, JalJalrLink) {
  const auto r = run_src(R"(
    li a0, 1
    jal ra, fn
    addi a0, a0, 100
    ecall
fn:
    addi a0, a0, 10
    ret
  )");
  EXPECT_EQ(r.state.x[isa::kA0], 111u);
}

TEST(IssFp, BasicDoubleArithmetic) {
  Memory mem;
  const auto r = run_src(R"(
    .data
a: .double 1.5
b: .double 2.25
out: .zero 8
    .text
    la a0, a
    fld ft0, 0(a0)
    fld ft1, 8(a0)
    fadd.d ft2, ft0, ft1
    fmul.d ft3, ft2, ft1
    fsd ft3, 16(a0)
    ecall
  )", mem);
  EXPECT_EQ(r.halt, HaltReason::kEcall);
  EXPECT_EQ(mem.load_f64(kD + 16), (1.5 + 2.25) * 2.25);
}

TEST(IssFp, FmaFamilies) {
  Memory mem;
  const auto r = run_src(R"(
    .data
v: .double 2.0, 3.0, 10.0
out: .zero 32
    .text
    la a0, v
    fld ft0, 0(a0)
    fld ft1, 8(a0)
    fld ft2, 16(a0)
    fmadd.d ft3, ft0, ft1, ft2    # 16
    fmsub.d ft4, ft0, ft1, ft2    # -4
    fnmsub.d ft5, ft0, ft1, ft2   # 4
    fnmadd.d ft6, ft0, ft1, ft2   # -16
    fsd ft3, 24(a0)
    fsd ft4, 32(a0)
    fsd ft5, 40(a0)
    fsd ft6, 48(a0)
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall);
  EXPECT_EQ(mem.load_f64(kD + 24), 16.0);
  EXPECT_EQ(mem.load_f64(kD + 32), -4.0);
  EXPECT_EQ(mem.load_f64(kD + 40), 4.0);
  EXPECT_EQ(mem.load_f64(kD + 48), -16.0);
}

TEST(IssFp, ConversionsAndMoves) {
  const auto r = run_src(R"(
    li a0, -5
    fcvt.d.w ft0, a0
    fcvt.w.d a1, ft0
    li a2, 0x40490FDB        # pi as f32 bits
    fmv.w.x ft1, a2
    fmv.x.w a3, ft1
    fcvt.d.s ft2, ft1
    fcvt.w.d a4, ft2         # round(pi) = 3
    ecall
  )");
  EXPECT_EQ(static_cast<i32>(r.state.x[isa::kA1]), -5);
  EXPECT_EQ(r.state.x[isa::kA3], 0x40490FDBu);
  EXPECT_EQ(static_cast<i32>(r.state.x[isa::kA4]), 3);
}

TEST(IssFp, CompareAndClass) {
  Memory mem;
  const auto r = run_src(R"(
    .data
v: .double 1.0, 2.0
    .text
    la a0, v
    fld ft0, 0(a0)
    fld ft1, 8(a0)
    flt.d a1, ft0, ft1     # 1
    fle.d a2, ft1, ft0     # 0
    feq.d a3, ft0, ft0     # 1
    fclass.d a4, ft0       # positive normal: bit 6
    ecall
  )", mem);
  EXPECT_EQ(r.state.x[isa::kA1], 1u);
  EXPECT_EQ(r.state.x[isa::kA2], 0u);
  EXPECT_EQ(r.state.x[isa::kA3], 1u);
  EXPECT_EQ(r.state.x[isa::kA4], 1u << 6);
}

TEST(IssCsr, ReadWriteSetClear) {
  const auto r = run_src(R"(
    li t0, 8
    csrw chain_mask, t0
    csrr a0, chain_mask    # 8
    csrsi chain_mask, 2
    csrr a1, chain_mask    # 10
    csrci chain_mask, 8
    csrr a2, chain_mask    # 2
    csrrw a3, chain_mask, x0
    csrr a4, chain_mask    # 0
    ecall
  )");
  EXPECT_EQ(r.state.x[isa::kA0], 8u);
  EXPECT_EQ(r.state.x[isa::kA1], 10u);
  EXPECT_EQ(r.state.x[isa::kA2], 2u);
  EXPECT_EQ(r.state.x[isa::kA3], 2u);
  EXPECT_EQ(r.state.x[isa::kA4], 0u);
}

TEST(IssSsr, StreamedVectorAdd) {
  Memory mem;
  // a[i] = b[i] + c[i] over 8 elements using SSR0/SSR1 reads and SSR2 write.
  const auto r = run_src(R"(
    .data
b: .double 1, 2, 3, 4, 5, 6, 7, 8
c: .double 10, 20, 30, 40, 50, 60, 70, 80
a: .zero 64
    .text
    li t0, 7
    scfgw t0, 8         # ssr0 bound0 = 7   (idx 2*4+0)
    li t0, 8
    scfgw t0, 24        # ssr0 stride0 = 8  (idx 6*4+0)
    li t0, 7
    scfgw t0, 9         # ssr1 bound0
    li t0, 8
    scfgw t0, 25        # ssr1 stride0
    li t0, 7
    scfgw t0, 10        # ssr2 bound0
    li t0, 8
    scfgw t0, 26        # ssr2 stride0
    la t1, b
    scfgw t1, 48        # ssr0 rptr0 (idx 12*4+0)
    la t1, c
    scfgw t1, 49        # ssr1 rptr0
    la t1, a
    scfgw t1, 66        # ssr2 wptr0 (idx 16*4+2)
    csrwi ssr_enable, 1
    li t2, 7
    frep.o t2, 1
    fadd.d ft2, ft0, ft1
    csrwi ssr_enable, 0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(mem.load_f64(kD + 128 + 8 * i), (i + 1) * 11.0) << i;
  }
}

TEST(IssSsr, ExhaustedStreamIsError) {
  Memory mem;
  const auto r = run_src(R"(
    .data
b: .double 1
    .text
    li t0, 0
    scfgw t0, 8
    li t0, 8
    scfgw t0, 24
    la t1, b
    scfgw t1, 48
    csrwi ssr_enable, 1
    fmv.d ft3, ft0      # ok: one element
    fmv.d ft4, ft0      # error: stream exhausted
    ecall
  )", mem);
  EXPECT_EQ(r.halt, HaltReason::kError);
  EXPECT_NE(r.error.find("SSR"), std::string::npos) << r.error;
}

TEST(IssFrep, OuterRepetition) {
  const auto r = run_src(R"(
    li t0, 3            # 4 repetitions
    fcvt.d.w ft1, x0
    li t1, 1
    fcvt.d.w ft2, t1
    frep.o t0, 1
    fadd.d ft1, ft1, ft2
    fcvt.w.d a0, ft1
    ecall
  )");
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA0], 4u);
}

TEST(IssFrep, InnerVsOuterOrdering) {
  // Body: [a += b; a *= 2] with 2 reps.
  // frep.o: ((0+1)*2 +1)*2 = 6 ; frep.i: ((0+1+1)*2*2) = 8.
  const auto outer = run_src(R"(
    li t0, 1
    fcvt.d.w ft1, x0
    li t1, 1
    fcvt.d.w ft2, t1
    frep.o t0, 2
    fadd.d ft1, ft1, ft2
    fadd.d ft1, ft1, ft1
    fcvt.w.d a0, ft1
    ecall
  )");
  EXPECT_EQ(outer.state.x[isa::kA0], 6u);
  const auto inner = run_src(R"(
    li t0, 1
    fcvt.d.w ft1, x0
    li t1, 1
    fcvt.d.w ft2, t1
    frep.i t0, 2
    fadd.d ft1, ft1, ft2
    fadd.d ft1, ft1, ft1
    fcvt.w.d a0, ft1
    ecall
  )");
  EXPECT_EQ(inner.state.x[isa::kA0], 8u);
}

TEST(IssFrep, NonFpBodyIsError) {
  const auto r = run_src(R"(
    li t0, 1
    frep.o t0, 1
    addi a0, a0, 1
    ecall
  )");
  EXPECT_EQ(r.halt, HaltReason::kError);
  EXPECT_NE(r.error.find("frep"), std::string::npos);
}

TEST(IssChain, Fig1cChainedLoopArchitecturalResult) {
  Memory mem;
  // The paper's running example a = b*(c+d) with chaining on ft3, b = 2.0.
  const auto r = run_src(R"(
    .data
c: .double 1, 2, 3, 4, 5, 6, 7, 8
d: .double 10, 20, 30, 40, 50, 60, 70, 80
a: .zero 64
konst: .double 2.0
    .text
    la t0, konst
    fld fa0, 0(t0)
    li t0, 7
    scfgw t0, 8
    li t0, 8
    scfgw t0, 24
    li t0, 7
    scfgw t0, 9
    li t0, 8
    scfgw t0, 25
    li t0, 7
    scfgw t0, 10
    li t0, 8
    scfgw t0, 26
    la t1, c
    scfgw t1, 48
    la t1, d
    scfgw t1, 49
    la t1, a
    scfgw t1, 66
    csrwi ssr_enable, 1
    li t2, 8
    csrs chain_mask, t2     # enable chaining on ft3
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    csrs chain_mask, x0
    csrwi ssr_enable, 0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  const double c[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const double d[] = {10, 20, 30, 40, 50, 60, 70, 80};
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(mem.load_f64(kD + 128 + 8 * i), 2.0 * (c[i] + d[i])) << i;
  }
}

TEST(IssChain, UnderflowIsError) {
  const auto r = run_src(R"(
    li t0, 8
    csrw chain_mask, t0
    fmv.d ft4, ft3       # pop of empty chain FIFO
    ecall
  )");
  EXPECT_EQ(r.halt, HaltReason::kError);
  EXPECT_NE(r.error.find("underflow"), std::string::npos) << r.error;
}

TEST(IssChain, DisableLatchesOldest) {
  const auto r = run_src(R"(
    li t0, 8
    csrw chain_mask, t0
    li t1, 3
    fcvt.d.w ft3, t1     # push 3.0
    li t1, 4
    fcvt.d.w ft3, t1     # push 4.0
    csrw chain_mask, x0  # disable: ft3 latches oldest (3.0)
    fcvt.w.d a0, ft3
    ecall
  )");
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA0], 3u);
}

TEST(IssChain, WawNotOrderedButFifoIs) {
  // Without chaining, two writes to ft3 leave the last one; with chaining
  // both values are retained in FIFO order.
  const auto r = run_src(R"(
    li t0, 8
    csrw chain_mask, t0
    li t1, 7
    fcvt.d.w ft3, t1
    li t1, 9
    fcvt.d.w ft3, t1
    fcvt.w.d a0, ft3     # pops 7
    fcvt.w.d a1, ft3     # pops 9
    ecall
  )");
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA0], 7u);
  EXPECT_EQ(r.state.x[isa::kA1], 9u);
}

TEST(IssHalt, OffTextAndMaxSteps) {
  {
    Memory mem;
    const Program p = prog("nop\n");
    Iss iss(p, mem);
    EXPECT_EQ(iss.run(), HaltReason::kOffText);
  }
  {
    Memory mem;
    const Program p = prog("loop: j loop\n");
    Iss iss(p, mem, IssConfig{.max_steps = 1000});
    EXPECT_EQ(iss.run(), HaltReason::kMaxSteps);
  }
}

TEST(ExecSemantics, NanBoxing) {
  EXPECT_EQ(exec::unbox32(exec::box32(0x3F80'0000)), 0x3F80'0000u);
  // Improperly boxed single reads as canonical NaN.
  EXPECT_EQ(exec::unbox32(0x0000'0000'3F80'0000ull), exec::kCanonicalNan32);
}

TEST(ExecSemantics, MinMaxNanAndSignedZero) {
  using exec::bits_of_f64;
  using isa::Mnemonic;
  const u64 nan = exec::kCanonicalNan64;
  const u64 one = bits_of_f64(1.0);
  EXPECT_EQ(exec::fp_compute(Mnemonic::kFminD, nan, one, 0), one);
  EXPECT_EQ(exec::fp_compute(Mnemonic::kFmaxD, one, nan, 0), one);
  EXPECT_EQ(exec::fp_compute(Mnemonic::kFminD, nan, nan, 0), nan);
  const u64 pz = bits_of_f64(0.0);
  const u64 nz = bits_of_f64(-0.0);
  EXPECT_EQ(exec::fp_compute(Mnemonic::kFminD, pz, nz, 0), nz);
  EXPECT_EQ(exec::fp_compute(Mnemonic::kFmaxD, nz, pz, 0), pz);
}

TEST(ExecSemantics, CvtSaturation) {
  using exec::bits_of_f64;
  using isa::Mnemonic;
  EXPECT_EQ(exec::fp_to_int(Mnemonic::kFcvtWD, bits_of_f64(3e10), 0),
            0x7FFF'FFFFu);
  EXPECT_EQ(exec::fp_to_int(Mnemonic::kFcvtWD, bits_of_f64(-3e10), 0),
            0x8000'0000u);
  EXPECT_EQ(exec::fp_to_int(Mnemonic::kFcvtWuD, bits_of_f64(-1.0), 0), 0u);
  EXPECT_EQ(exec::fp_to_int(Mnemonic::kFcvtWD, exec::kCanonicalNan64, 0),
            0x7FFF'FFFFu);
}

} // namespace
} // namespace sch
