// Fuzz-subsystem coverage: generator determinism and legality (a seeded
// corpus must run divergence-free on both engines), the .s reproducer
// round-trip through the text assembler, spec JSON round-trip, and the
// ddmin minimizer's contract on a synthetic predicate.
#include <gtest/gtest.h>

#include <set>

#include "asm/assembler.hpp"
#include "fuzz/fuzz.hpp"

namespace sch {
namespace {

using fuzz::BlockKind;
using fuzz::BlockSpec;
using fuzz::GenConfig;
using fuzz::ProgramSpec;

TEST(FuzzRng, DeterministicAndPlatformStable) {
  fuzz::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  // Pinned first draw: the PRNG must produce identical streams on every
  // host, or CI seeds would not reproduce locally.
  fuzz::Rng c(42);
  EXPECT_EQ(c.next(), 0x31b0ece7c4f697a2ull);
  fuzz::Rng d(0);  // zero seed must not collapse to a zero state
  EXPECT_NE(d.next(), 0u);
  EXPECT_NE(d.next(), d.next());
}

TEST(FuzzRng, RangeIsInclusiveAndInBounds) {
  fuzz::Rng rng(7);
  std::set<u32> seen;
  for (int i = 0; i < 400; ++i) {
    const u32 v = rng.range(3, 6);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values reachable
}

TEST(FuzzGenerator, SpecIsAPureFunctionOfTheSeed) {
  const ProgramSpec a = fuzz::generate_spec(123);
  const ProgramSpec b = fuzz::generate_spec(123);
  ASSERT_EQ(a.num_harts, b.num_harts);
  ASSERT_EQ(a.harts.size(), b.harts.size());
  for (usize h = 0; h < a.harts.size(); ++h) {
    ASSERT_EQ(a.harts[h].size(), b.harts[h].size());
    for (usize i = 0; i < a.harts[h].size(); ++i) {
      EXPECT_EQ(a.harts[h][i].kind, b.harts[h][i].kind);
      EXPECT_EQ(a.harts[h][i].seed, b.harts[h][i].seed);
    }
  }
  const std::vector<Program> pa = fuzz::materialize(a);
  const std::vector<Program> pb = fuzz::materialize(b);
  ASSERT_EQ(pa.size(), pb.size());
  for (usize h = 0; h < pa.size(); ++h) {
    EXPECT_EQ(pa[h].words, pb[h].words);
    EXPECT_EQ(pa[h].data, pb[h].data);
  }
}

TEST(FuzzGenerator, HartsGetDisjointDataPartitions) {
  GenConfig gen;
  gen.max_harts = 4;
  for (u64 seed = 1; seed <= 20; ++seed) {
    const ProgramSpec spec = fuzz::generate_spec(seed, gen);
    const std::vector<Program> programs = fuzz::materialize(spec);
    for (u32 h = 0; h < spec.num_harts; ++h) {
      const Addr base = memmap::kTcdmBase +
                        h * (memmap::kTcdmSize / spec.num_harts);
      EXPECT_EQ(programs[h].data_base, base);
      EXPECT_LE(programs[h].data.size(),
                memmap::kTcdmSize / spec.num_harts);
    }
  }
}

TEST(FuzzGenerator, BlockKindNamesRoundTrip) {
  for (u32 k = 0; k < static_cast<u32>(BlockKind::kCount); ++k) {
    const BlockKind kind = static_cast<BlockKind>(k);
    BlockKind parsed;
    ASSERT_TRUE(fuzz::parse_block_kind(fuzz::block_kind_name(kind), parsed))
        << fuzz::block_kind_name(kind);
    EXPECT_EQ(parsed, kind);
  }
  BlockKind out;
  EXPECT_FALSE(fuzz::parse_block_kind("warp_drive", out));
}

TEST(FuzzGenerator, SeededCorpusRunsDivergenceFreeOnBothEngines) {
  // The heart of the tentpole: 40 pinned seeds across the whole block
  // vocabulary must execute with zero lockstep divergence, zero crashes
  // and zero budget overruns. A failure here is a real engine or
  // generator-legality bug -- minimize it with `schsim fuzz` and pin the
  // reproducer.
  for (u32 i = 0; i < 40; ++i) {
    const u64 seed = fuzz::run_seed(0xC0DE, i);
    SCOPED_TRACE("seed 0x" + std::to_string(seed));
    const ProgramSpec spec = fuzz::generate_spec(seed);
    const api::RunReport r = fuzz::run_spec(spec);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.lockstep_mismatches, 0u);
  }
}

TEST(FuzzGenerator, RenderedAsmRoundTripsThroughTheAssembler) {
  // The .s reproducer is only useful if `schsim repro.s` rebuilds the very
  // same program: assemble the rendering and compare instruction words and
  // the data image.
  u32 checked = 0;
  for (u64 seed = 50; seed < 70; ++seed) {
    const ProgramSpec spec = fuzz::generate_spec(seed);
    const std::vector<Program> programs = fuzz::materialize(spec);
    for (u32 h = 0; h < spec.num_harts; ++h) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " hart " +
                   std::to_string(h));
      const std::string text = fuzz::render_asm(spec, h);
      assembler::Options opts;
      opts.data_base = programs[h].data_base;
      const Result<Program> re = assembler::assemble(text, opts);
      ASSERT_TRUE(re.ok()) << re.status().message() << "\n" << text;
      EXPECT_EQ(re.value().words, programs[h].words) << text;
      EXPECT_EQ(re.value().data, programs[h].data);
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u);
}

TEST(FuzzGenerator, SpecJsonRoundTrips) {
  const ProgramSpec spec = fuzz::generate_spec(0xDEADBEEFCAFEF00Dull);
  const scenario::Json j = fuzz::spec_to_json(spec);
  // Through text, as the reproducer files do.
  const Result<scenario::Json> parsed = scenario::Json::parse(j.dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ProgramSpec back;
  ASSERT_TRUE(fuzz::spec_from_json(parsed.value(), back).is_ok());
  EXPECT_EQ(back.seed, spec.seed);
  ASSERT_EQ(back.num_harts, spec.num_harts);
  ASSERT_EQ(back.harts.size(), spec.harts.size());
  for (usize h = 0; h < spec.harts.size(); ++h) {
    ASSERT_EQ(back.harts[h].size(), spec.harts[h].size());
    for (usize i = 0; i < spec.harts[h].size(); ++i) {
      EXPECT_EQ(back.harts[h][i].kind, spec.harts[h][i].kind);
      EXPECT_EQ(back.harts[h][i].seed, spec.harts[h][i].seed);
    }
  }
}

TEST(FuzzGenerator, SpecJsonRejectsMalformedInput) {
  ProgramSpec out;
  const auto rejects = [&](const char* text) {
    const Result<scenario::Json> j = scenario::Json::parse(text);
    ASSERT_TRUE(j.ok()) << text;
    EXPECT_FALSE(fuzz::spec_from_json(j.value(), out).is_ok()) << text;
  };
  rejects("42");
  rejects("{}");
  rejects(R"({"seed": 7, "num_harts": 1, "harts": [[]]})");  // seed not hex str
  rejects(R"({"seed": "0x1", "num_harts": 0, "harts": []})");
  rejects(R"({"seed": "0x1", "num_harts": 2, "harts": [[]]})");  // count
  rejects(R"({"seed": "0x1", "num_harts": 1,
              "harts": [[{"kind": "warp", "seed": "0x2"}]]})");
  rejects(R"({"seed": "0x1", "num_harts": 1,
              "harts": [[{"kind": "int_alu"}]]})");  // missing block seed
}

TEST(FuzzMinimizer, ShrinksToTheFailingCore) {
  // Synthetic predicate: "fails" iff a kDma AND a kFrep block are both
  // present. ddmin must strip everything else and keep exactly those two.
  ProgramSpec spec;
  spec.seed = 1;
  spec.num_harts = 2;
  spec.harts.resize(2);
  const auto blk = [](BlockKind k, u64 s) {
    BlockSpec b;
    b.kind = k;
    b.seed = s;
    return b;
  };
  spec.harts[0] = {blk(BlockKind::kIntAlu, 1), blk(BlockKind::kDma, 2),
                   blk(BlockKind::kMemory, 3), blk(BlockKind::kCsr, 4)};
  spec.harts[1] = {blk(BlockKind::kChain, 5), blk(BlockKind::kFrep, 6),
                   blk(BlockKind::kSsr, 7), blk(BlockKind::kFpCompute, 8)};
  const auto fails = [](const ProgramSpec& s) {
    bool dma = false, frep = false;
    for (const auto& hart : s.harts) {
      for (const BlockSpec& b : hart) {
        dma |= b.kind == BlockKind::kDma;
        frep |= b.kind == BlockKind::kFrep;
      }
    }
    return dma && frep;
  };
  fuzz::MinimizeStats stats;
  const ProgramSpec min = fuzz::minimize(spec, fails, &stats);
  EXPECT_EQ(min.total_blocks(), 2u);
  EXPECT_TRUE(fails(min));
  EXPECT_EQ(min.num_harts, spec.num_harts);  // cluster shape preserved
  EXPECT_EQ(stats.initial_blocks, 8u);
  EXPECT_EQ(stats.final_blocks, 2u);
  EXPECT_GT(stats.probes, 0u);
}

TEST(FuzzMinimizer, SingleBlockFailureIsAFixedPoint) {
  ProgramSpec spec;
  spec.seed = 9;
  spec.num_harts = 1;
  spec.harts = {{BlockSpec{BlockKind::kSsr, 11}}};
  const auto fails = [](const ProgramSpec& s) { return s.total_blocks() >= 1; };
  const ProgramSpec min = fuzz::minimize(spec, fails, nullptr);
  EXPECT_EQ(min.total_blocks(), 1u);
  EXPECT_EQ(min.harts[0][0].seed, 11u);
}

TEST(FuzzCampaign, RunSeedsAreDistinctPerIndex) {
  std::set<u64> seeds;
  for (u32 i = 0; i < 200; ++i) seeds.insert(fuzz::run_seed(5, i));
  EXPECT_EQ(seeds.size(), 200u);  // no colliding campaign positions
}

TEST(FuzzDiffer, GeneratorExceptionSurfacesAsInternalFailure) {
  // A spec whose hart list disagrees with num_harts makes materialize()
  // produce fewer programs than cores -- run_spec must still return a
  // classified report, never throw out of the campaign loop.
  ProgramSpec spec;
  spec.seed = 3;
  spec.num_harts = 2;
  spec.harts.resize(2);
  spec.harts[0] = {BlockSpec{BlockKind::kIntAlu, 1}};
  spec.harts[1] = {BlockSpec{BlockKind::kIntAlu, 2}};
  const api::RunReport ok_report = fuzz::run_spec(spec);
  EXPECT_TRUE(ok_report.ok) << ok_report.error;
}

} // namespace
} // namespace sch
