// FREP sequencer unit tests: capture/replay for outer and inner modes,
// buffer-limit rejection, nested-frep rejection, marker consumption.
#include <gtest/gtest.h>

#include "isa/encode.hpp"
#include "sim/sequencer.hpp"

namespace sch::sim {
namespace {

using isa::Mnemonic;

FpOp fp_op(isa::Instr in, u32 int_operand = 0) {
  FpOp op;
  op.in = in;
  op.int_operand = int_operand;
  return op;
}

FpOp fadd(u8 rd) { return fp_op(isa::make_r(Mnemonic::kFaddD, rd, 0, 1)); }
FpOp fmul(u8 rd) { return fp_op(isa::make_r(Mnemonic::kFmulD, rd, 3, 10)); }
FpOp frep_o(u32 reps_minus_1, i32 body) {
  return fp_op(isa::make_i(Mnemonic::kFrepO, 0, 5, body), reps_minus_1);
}
FpOp frep_i(u32 reps_minus_1, i32 body) {
  return fp_op(isa::make_i(Mnemonic::kFrepI, 0, 5, body), reps_minus_1);
}

std::vector<Mnemonic> drain(Sequencer& s, usize limit = 100) {
  std::vector<Mnemonic> out;
  while (out.size() < limit) {
    auto op = s.front();
    if (!op) break;
    out.push_back(op->in.mn);
    s.pop_front();
  }
  return out;
}

TEST(Sequencer, PassThroughWithoutFrep) {
  Sequencer s(8, 16);
  s.push(fadd(3));
  s.push(fmul(2));
  const auto ops = drain(s);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0], Mnemonic::kFaddD);
  EXPECT_EQ(ops[1], Mnemonic::kFmulD);
  EXPECT_TRUE(s.idle());
}

TEST(Sequencer, FrepOuterReplays) {
  Sequencer s(8, 16);
  s.push(frep_o(2, 2)); // body of 2, 3 passes
  s.push(fadd(3));
  s.push(fmul(2));
  const auto ops = drain(s);
  ASSERT_EQ(ops.size(), 6u);
  const std::vector<Mnemonic> expect = {Mnemonic::kFaddD, Mnemonic::kFmulD,
                                        Mnemonic::kFaddD, Mnemonic::kFmulD,
                                        Mnemonic::kFaddD, Mnemonic::kFmulD};
  EXPECT_EQ(ops, expect);
  EXPECT_EQ(s.stats().replayed_ops, 4u);
  EXPECT_EQ(s.stats().freps_executed, 1u);
  EXPECT_TRUE(s.idle());
}

TEST(Sequencer, FrepInnerRepeatsEachInstr) {
  Sequencer s(8, 16);
  s.push(frep_i(2, 2));
  s.push(fadd(3));
  s.push(fmul(2));
  const auto ops = drain(s);
  const std::vector<Mnemonic> expect = {Mnemonic::kFaddD, Mnemonic::kFaddD,
                                        Mnemonic::kFaddD, Mnemonic::kFmulD,
                                        Mnemonic::kFmulD, Mnemonic::kFmulD};
  EXPECT_EQ(ops, expect);
  EXPECT_TRUE(s.idle());
}

TEST(Sequencer, SinglePassFrepIsPassThrough) {
  Sequencer s(8, 16);
  s.push(frep_o(0, 2)); // rs1 = 0 -> one pass
  s.push(fadd(3));
  s.push(fmul(2));
  const auto ops = drain(s);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.stats().replayed_ops, 0u);
}

TEST(Sequencer, ReplayWhileQueueFills) {
  Sequencer s(8, 16);
  s.push(frep_o(3, 1)); // 4 passes of one fadd
  s.push(fadd(3));
  // Post-loop op arrives while replay is pending.
  s.push(fmul(2));
  const auto ops = drain(s);
  ASSERT_EQ(ops.size(), 5u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ops[i], Mnemonic::kFaddD);
  EXPECT_EQ(ops[4], Mnemonic::kFmulD);
}

TEST(Sequencer, BodyLargerThanBufferIsError) {
  Sequencer s(8, 4);
  s.push(frep_o(1, 5));
  s.push(fadd(3));
  EXPECT_EQ(s.front(), std::nullopt);
  EXPECT_TRUE(s.has_error());
  EXPECT_NE(s.error().find("sequencer buffer"), std::string::npos);
}

TEST(Sequencer, NestedFrepIsError) {
  Sequencer s(8, 16);
  s.push(frep_o(1, 2));
  s.push(frep_o(1, 1)); // marker inside a capturing body
  auto op = s.front();
  EXPECT_EQ(op, std::nullopt);
  EXPECT_TRUE(s.has_error());
}

TEST(Sequencer, EmptyBodyIsError) {
  Sequencer s(8, 16);
  s.push(frep_o(1, 0));
  EXPECT_EQ(s.front(), std::nullopt);
  EXPECT_TRUE(s.has_error());
}

} // namespace
} // namespace sch::sim
