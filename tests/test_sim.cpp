// Cycle-level simulator tests: timing invariants (FPU latency, chaining
// throughput, backpressure), pseudo-dual-issue behaviour, FREP overlap,
// SSR timing integration, deadlock detection, and architectural
// cross-validation against the functional ISS.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "iss/exec_semantics.hpp"
#include "iss/iss.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"

namespace sch {
namespace {

constexpr Addr kD = memmap::kTcdmBase;

Program prog(std::string_view src) {
  auto r = assembler::assemble(src);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

struct SimRun {
  HaltReason halt;
  Cycle cycles;
  sim::PerfCounters perf;
  ArchState state;
  std::string error;
};

SimRun run_sim(const Program& p, Memory& mem, sim::SimConfig cfg = {}) {
  sim::Simulator s(p, mem, cfg);
  const HaltReason h = s.run();
  return {h, s.cycles(), s.perf(), s.arch_state(), s.error()};
}

SimRun run_sim_src(std::string_view src, Memory& mem, sim::SimConfig cfg = {}) {
  return run_sim(prog(src), mem, cfg);
}

/// Run on both engines; compare x-regs, FP regs, and a memory window.
void cross_validate(std::string_view src, Addr mem_base = kD, u32 mem_bytes = 256) {
  const Program p = prog(src);
  Memory mem_iss;
  Iss iss(p, mem_iss);
  const HaltReason hi = iss.run();
  ASSERT_EQ(hi, HaltReason::kEcall) << "ISS: " << iss.error();

  Memory mem_sim;
  sim::Simulator simulator(p, mem_sim);
  const HaltReason hs = simulator.run();
  ASSERT_EQ(hs, HaltReason::kEcall) << "sim: " << simulator.error();

  const ArchState& a = iss.state();
  const ArchState b = simulator.arch_state();
  for (u8 r = 0; r < isa::kNumIntRegs; ++r) {
    EXPECT_EQ(a.x[r], b.x[r]) << "x" << static_cast<int>(r);
  }
  for (u8 r = 0; r < isa::kNumFpRegs; ++r) {
    EXPECT_EQ(a.f[r], b.f[r]) << "f" << static_cast<int>(r);
  }
  EXPECT_EQ(mem_iss.read_block(mem_base, mem_bytes),
            mem_sim.read_block(mem_base, mem_bytes));
}

TEST(SimBasic, IntProgramHalts) {
  Memory mem;
  const auto r = run_sim_src(R"(
    li a0, 20
    li a1, 22
    add a2, a0, a1
    ecall
  )", mem);
  EXPECT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA2], 42u);
  EXPECT_GE(r.cycles, 4u);
  EXPECT_LE(r.cycles, 8u);
}

TEST(SimBasic, BranchPenaltyAccounting) {
  Memory mem;
  // 10-iteration countdown: 10 taken branches (9 back + final not-taken...).
  const auto r = run_sim_src(R"(
    li a0, 10
loop:
    addi a0, a0, -1
    bnez a0, loop
    ecall
  )", mem);
  EXPECT_EQ(r.halt, HaltReason::kEcall);
  EXPECT_EQ(r.perf.branches, 10u);
  EXPECT_EQ(r.perf.branch_bubbles, 9u); // 9 taken, 1 fall-through
}

TEST(SimBasic, LoadUseLatency) {
  Memory mem;
  // Dependent use right after a load: expect a stall.
  const auto r = run_sim_src(R"(
    .data
v: .word 5
    .text
    la a0, v
    lw a1, 0(a0)
    addi a2, a1, 1
    ecall
  )", mem);
  EXPECT_EQ(r.halt, HaltReason::kEcall);
  EXPECT_EQ(r.state.x[isa::kA2], 6u);
  EXPECT_GE(r.perf.stall_int_raw, 1u); // load-use bubble
}

// Differential RAW-latency measurement: identical programs except the fmul's
// dependence on the fadd; the stall-count delta isolates the FPU RAW window
// from the fld->fadd load-use stall.
namespace {
const char* kDependentSrc = R"(
    .data
v: .double 1.0, 2.0
    .text
    la a0, v
    fld ft0, 0(a0)
    fld ft1, 8(a0)
    fadd.d ft3, ft0, ft1
    fmul.d ft4, ft3, ft1
    ecall
)";
const char* kIndependentSrc = R"(
    .data
v: .double 1.0, 2.0
    .text
    la a0, v
    fld ft0, 0(a0)
    fld ft1, 8(a0)
    fadd.d ft3, ft0, ft1
    fmul.d ft4, ft0, ft1
    ecall
)";
} // namespace

TEST(SimTiming, RawStallEqualsFpuDepth) {
  // The dependent fmul waits depth+1 cycles after the fadd issues; with the
  // 3-stage FPU the paper counts exactly 3 wasted cycles (Fig. 1a).
  Memory m1, m2;
  const auto dep = run_sim_src(kDependentSrc, m1);
  const auto ind = run_sim_src(kIndependentSrc, m2);
  ASSERT_EQ(dep.halt, HaltReason::kEcall) << dep.error;
  ASSERT_EQ(ind.halt, HaltReason::kEcall) << ind.error;
  EXPECT_EQ(dep.perf.stall_fp_raw - ind.perf.stall_fp_raw, 3u);
}

TEST(SimTiming, DeeperPipelineMeansMoreStall) {
  for (u32 depth : {1u, 2u, 4u, 6u}) {
    Memory m1, m2;
    sim::SimConfig cfg;
    cfg.fpu_depth = depth;
    const auto dep = run_sim_src(kDependentSrc, m1, cfg);
    const auto ind = run_sim_src(kIndependentSrc, m2, cfg);
    ASSERT_EQ(dep.halt, HaltReason::kEcall) << dep.error;
    ASSERT_EQ(ind.halt, HaltReason::kEcall) << ind.error;
    EXPECT_EQ(dep.perf.stall_fp_raw - ind.perf.stall_fp_raw, depth)
        << "depth " << depth;
  }
}

TEST(SimTiming, IndependentFpOpsFullThroughput) {
  Memory mem;
  const auto r = run_sim_src(R"(
    .data
v: .double 1.0, 2.0
    .text
    la a0, v
    fld ft0, 0(a0)
    fld ft1, 8(a0)
    fadd.d ft2, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft4, ft0, ft1
    fadd.d ft5, ft0, ft1
    fadd.d ft6, ft0, ft1
    fadd.d ft7, ft0, ft1
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  // The only RAW is the fld->first-fadd load-use window; the six independent
  // fadds themselves issue back-to-back.
  EXPECT_LE(r.perf.stall_fp_raw, 2u);
  EXPECT_EQ(r.perf.fpu_ops, 6u);
}

TEST(SimChain, ChainedFifoRemovesRawStall) {
  // The Fig. 1c pattern: 4 independent fadds into the chained ft3, then
  // 4 fmuls popping it. No architectural-register RAW stalls; the fmuls
  // wait only for the first fadd to emerge (chain-empty).
  Memory mem;
  const auto r = run_sim_src(R"(
    .data
v: .double 1.0, 2.0
    .text
    la a0, v
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    li t0, 8
    csrs chain_mask, t0
    fadd.d ft3, fa0, fa1
    fadd.d ft3, fa0, fa1
    fadd.d ft3, fa0, fa1
    fadd.d ft3, fa0, fa1
    fmul.d ft4, ft3, fa0
    fmul.d ft5, ft3, fa0
    fmul.d ft6, ft3, fa0
    fmul.d ft7, ft3, fa0
    csrw chain_mask, x0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.perf.stall_fp_raw, 0u);
  EXPECT_EQ(r.perf.stall_fp_waw, 0u);
  // First fmul waits for fadd#1's writeback only; with 4 fadds ahead the
  // FIFO hides the rest: zero or tiny chain-empty stall.
  EXPECT_LE(r.perf.stall_chain_empty, 1u);
  EXPECT_EQ(r.perf.fpu_ops, 8u);
  // Check values: ft4..ft7 = (1+2)*1 = 3.
  for (u8 reg : {isa::kFt4, isa::kFt5, isa::kFt6, isa::kFt7}) {
    EXPECT_EQ(exec::f64_of_bits(r.state.f[reg]), 3.0);
  }
}

TEST(SimChain, UnrolledEquivalentAlsoNoStall) {
  // Fig. 1b: the software alternative uses 3 extra registers.
  Memory mem;
  const auto r = run_sim_src(R"(
    .data
v: .double 1.0, 2.0
    .text
    la a0, v
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    fadd.d ft3, fa0, fa1
    fadd.d ft4, fa0, fa1
    fadd.d ft5, fa0, fa1
    fadd.d ft6, fa0, fa1
    fmul.d ft7, ft3, fa0
    fmul.d ft8, ft4, fa0
    fmul.d ft9, ft5, fa0
    fmul.d ft10, ft6, fa0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  // Only the fld->fadd load-use window stalls; the unrolled fadd/fmul
  // schedule itself is stall-free (the point of Fig. 1b).
  EXPECT_LE(r.perf.stall_fp_raw, 2u);
  EXPECT_EQ(r.perf.fpu_ops, 8u);
}

TEST(SimChain, BackpressureStallsProducerNotDrops) {
  // 4 pushes fill the FIFO (1 arch reg + 3 pipeline regs); an independent
  // long-latency fdiv then delays the first consumer, so producer
  // writebacks hit an occupied register -- the paper's orange-slot case.
  // Backpressure must hold them without dropping or reordering values.
  Memory mem;
  const auto r = run_sim_src(R"(
    .data
w: .double 6.0, 3.0
    .text
    la a0, w
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    li t1, 1
    li t2, 2
    li t3, 3
    li t4, 4
    li t0, 8
    csrs chain_mask, t0
    fcvt.d.w ft3, t1
    fcvt.d.w ft3, t2
    fcvt.d.w ft3, t3
    fcvt.d.w ft3, t4
    fdiv.d fa2, fa0, fa1
    fcvt.w.d a0, ft3
    fcvt.w.d a1, ft3
    fcvt.w.d a2, ft3
    fcvt.w.d a3, ft3
    csrw chain_mask, x0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_GE(r.perf.stall_chain_full, 1u);
  EXPECT_EQ(r.state.x[isa::kA0], 1u);
  EXPECT_EQ(r.state.x[isa::kA1], 2u);
  EXPECT_EQ(r.state.x[isa::kA2], 3u);
  EXPECT_EQ(r.state.x[isa::kA3], 4u);
  EXPECT_EQ(exec::f64_of_bits(r.state.f[isa::kFa2]), 2.0);
}

TEST(SimChain, OverflowBeyondCapacityDeadlocks) {
  // Producing more than (pipeline depth + 1) elements before any consumer
  // issues is an ill-formed program on this hardware: the paper requires
  // "properly balancing the production and consumption rate". The in-order
  // core cannot reach the consumers past the stalled producers, and the
  // watchdog must report it rather than dropping values.
  Memory mem;
  sim::SimConfig cfg;
  cfg.deadlock_cycles = 300;
  const auto r = run_sim_src(R"(
    li t1, 1
    li t0, 8
    csrs chain_mask, t0
    fcvt.d.w ft3, t1
    fcvt.d.w ft3, t1
    fcvt.d.w ft3, t1
    fcvt.d.w ft3, t1
    fcvt.d.w ft3, t1
    fcvt.d.w ft3, t1
    fcvt.w.d a0, ft3
    ecall
  )", mem, cfg);
  EXPECT_EQ(r.halt, HaltReason::kError);
  EXPECT_NE(r.error.find("deadlock"), std::string::npos) << r.error;
  EXPECT_GE(r.perf.stall_chain_full, 1u);
}

TEST(SimChain, StrictHandoffCostsCycles) {
  const char* src = R"(
    .data
v: .double 1.0, 2.0
    .text
    la a0, v
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    li t0, 8
    csrs chain_mask, t0
    fadd.d ft3, fa0, fa1
    fadd.d ft3, fa0, fa1
    fadd.d ft3, fa0, fa1
    fadd.d ft3, fa0, fa1
    fmul.d ft4, ft3, fa0
    fmul.d ft5, ft3, fa0
    fmul.d ft6, ft3, fa0
    fmul.d ft7, ft3, fa0
    csrw chain_mask, x0
    ecall
  )";
  Memory m1, m2;
  sim::SimConfig fast, strict;
  strict.strict_chain_handoff = true;
  const auto rf = run_sim_src(src, m1, fast);
  const auto rs = run_sim_src(src, m2, strict);
  ASSERT_EQ(rf.halt, HaltReason::kEcall) << rf.error;
  ASSERT_EQ(rs.halt, HaltReason::kEcall) << rs.error;
  EXPECT_GT(rs.cycles, rf.cycles); // conservative RTL pays bubbles
  // Architectural results identical.
  for (u8 reg : {isa::kFt4, isa::kFt5, isa::kFt6, isa::kFt7}) {
    EXPECT_EQ(rf.state.f[reg], rs.state.f[reg]);
  }
}

TEST(SimChain, UnderflowDeadlockDetected) {
  Memory mem;
  sim::SimConfig cfg;
  cfg.deadlock_cycles = 200;
  const auto r = run_sim_src(R"(
    li t0, 8
    csrs chain_mask, t0
    fmv.d ft4, ft3
    ecall
  )", mem, cfg);
  EXPECT_EQ(r.halt, HaltReason::kError);
  EXPECT_NE(r.error.find("deadlock"), std::string::npos) << r.error;
}

TEST(SimSsr, StreamedVectorAddMatchesAndIsFast) {
  Memory mem;
  const auto r = run_sim_src(R"(
    .data
b: .double 1, 2, 3, 4, 5, 6, 7, 8
c: .double 10, 20, 30, 40, 50, 60, 70, 80
a: .zero 64
    .text
    li t0, 7
    scfgw t0, 8
    li t0, 8
    scfgw t0, 24
    li t0, 7
    scfgw t0, 9
    li t0, 8
    scfgw t0, 25
    li t0, 7
    scfgw t0, 10
    li t0, 8
    scfgw t0, 26
    la t1, b
    scfgw t1, 48
    la t1, c
    scfgw t1, 49
    la t1, a
    scfgw t1, 66
    csrwi ssr_enable, 1
    li t2, 7
    frep.o t2, 1
    fadd.d ft2, ft0, ft1
    csrwi ssr_enable, 0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(mem.load_f64(kD + 128 + 8 * i), (i + 1) * 11.0) << i;
  }
  // 8 streamed fadds, no register traffic stalls: near-1/cycle issue.
  EXPECT_EQ(r.perf.fpu_ops, 8u);
  EXPECT_GE(r.perf.stall_fp_raw, 0u);
}

TEST(SimFrep, ReplayFreesIntegerCore) {
  // Same FP work with and without frep: the frep version lets addi/bnez run
  // during replay, and skips refetching the body.
  const char* with_frep = R"(
    .data
b: .double 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1
c: .double 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2
a: .zero 128
    .text
    li t0, 15
    scfgw t0, 8
    li t0, 8
    scfgw t0, 24
    li t0, 15
    scfgw t0, 9
    li t0, 8
    scfgw t0, 25
    li t0, 15
    scfgw t0, 10
    li t0, 8
    scfgw t0, 26
    la t1, b
    scfgw t1, 48
    la t1, c
    scfgw t1, 49
    la t1, a
    scfgw t1, 66
    csrwi ssr_enable, 1
    li t2, 15
    frep.o t2, 1
    fadd.d ft2, ft0, ft1
    csrwi ssr_enable, 0
    ecall
  )";
  Memory m1;
  const auto r = run_sim_src(with_frep, m1);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.perf.fpu_ops, 16u);
  for (u32 i = 0; i < 16; ++i) EXPECT_EQ(m1.load_f64(kD + 256 + 8 * i), 3.0);
}

TEST(SimSsr, RepeatStreamSavesBandwidth) {
  Memory mem;
  // One coefficient element repeated 4x: single TCDM fetch, four pops.
  const auto r = run_sim_src(R"(
    .data
k: .double 2.5
    .text
    li t0, 3
    scfgw t0, 4         # ssr0 repeat = 3
    li t0, 0
    scfgw t0, 8         # ssr0 bound0 = 0
    li t0, 8
    scfgw t0, 24
    la t1, k
    scfgw t1, 48
    csrwi ssr_enable, 1
    fmv.d ft4, ft0
    fmv.d ft5, ft0
    fmv.d ft6, ft0
    fmv.d ft7, ft0
    csrwi ssr_enable, 0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  for (u8 reg : {isa::kFt4, isa::kFt5, isa::kFt6, isa::kFt7}) {
    EXPECT_EQ(exec::f64_of_bits(r.state.f[reg]), 2.5);
  }
}

TEST(SimCsr, CycleCounterAdvances) {
  Memory mem;
  const auto r = run_sim_src(R"(
    csrr a0, mcycle
    nop
    nop
    nop
    csrr a1, mcycle
    sub a2, a1, a0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_GE(r.state.x[isa::kA2], 4u);
  EXPECT_LE(r.state.x[isa::kA2], 6u);
}

TEST(SimCsr, StreamCsrWaitsForQuiescence) {
  // Disabling chaining immediately after the last chained op must not lose
  // in-flight values (the CSR write stalls until the FP subsystem drains).
  Memory mem;
  const auto r = run_sim_src(R"(
    li t1, 7
    li t0, 8
    csrs chain_mask, t0
    fcvt.d.w ft3, t1
    csrw chain_mask, x0
    fcvt.w.d a0, ft3
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA0], 7u);
  EXPECT_GE(r.perf.stall_csr_barrier, 1u);
}

// --- ISS cross-validation over a set of mixed programs ---------------------

TEST(CrossValidate, IntMix) {
  cross_validate(R"(
    .data
buf: .zero 64
    .text
    la a0, buf
    li a1, 0
    li a2, 10
loop:
    mul a3, a1, a1
    sw a3, 0(a0)
    addi a0, a0, 4
    addi a1, a1, 1
    bne a1, a2, loop
    ecall
  )");
}

TEST(CrossValidate, FpMix) {
  cross_validate(R"(
    .data
v: .double 1.5, -2.25, 3.75, 0.5
out: .zero 64
    .text
    la a0, v
    fld ft0, 0(a0)
    fld ft1, 8(a0)
    fld ft2, 16(a0)
    fld ft3, 24(a0)
    fmadd.d ft4, ft0, ft1, ft2
    fmsub.d ft5, ft1, ft2, ft3
    fdiv.d ft6, ft0, ft2
    fsqrt.d ft7, ft2
    fmin.d fa0, ft0, ft1
    fmax.d fa1, ft0, ft1
    fsgnjx.d fa2, ft0, ft1
    fsd ft4, 32(a0)
    fsd ft5, 40(a0)
    fsd ft6, 48(a0)
    fsd ft7, 56(a0)
    feq.d a1, ft0, ft0
    flt.d a2, ft1, ft0
    fclass.d a3, ft1
    ecall
  )");
}

TEST(CrossValidate, SsrStreams) {
  cross_validate(R"(
    .data
b: .double 1, 2, 3, 4, 5, 6
a: .zero 48
    .text
    li t0, 5
    scfgw t0, 8
    li t0, 8
    scfgw t0, 24
    li t0, 5
    scfgw t0, 10
    li t0, 8
    scfgw t0, 26
    la t1, b
    scfgw t1, 48
    la t1, a
    scfgw t1, 66
    csrwi ssr_enable, 1
    li t2, 5
    frep.o t2, 1
    fadd.d ft2, ft0, ft0
    csrwi ssr_enable, 0
    ecall
  )");
}

TEST(CrossValidate, ChainedLoop) {
  cross_validate(R"(
    .data
c: .double 1, 2, 3, 4, 5, 6, 7, 8
d: .double 10, 20, 30, 40, 50, 60, 70, 80
a: .zero 64
k: .double 2.0
    .text
    la t0, k
    fld fa0, 0(t0)
    li t0, 7
    scfgw t0, 8
    li t0, 8
    scfgw t0, 24
    li t0, 7
    scfgw t0, 9
    li t0, 8
    scfgw t0, 25
    li t0, 7
    scfgw t0, 10
    li t0, 8
    scfgw t0, 26
    la t1, c
    scfgw t1, 48
    la t1, d
    scfgw t1, 49
    la t1, a
    scfgw t1, 66
    csrwi ssr_enable, 1
    li t2, 8
    csrs chain_mask, t2
    li a1, 0
    li a2, 2
loop:
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    addi a1, a1, 1
    bne a1, a2, loop
    csrw chain_mask, x0
    csrwi ssr_enable, 0
    ecall
  )");
}

TEST(CrossValidate, IndirectGather) {
  cross_validate(R"(
    .data
data: .double 100, 101, 102, 103, 104, 105, 106, 107
idx: .half 7, 0, 3, 3, 5, 1
out: .zero 48
    .text
    li t0, 5
    scfgw t0, 8          # bound0 = 5 (6 indices)
    li t0, 2
    scfgw t0, 24         # stride0 = 2 bytes
    li t0, 0x10031       # indirect, shift=3, idx size=2B
    scfgw t0, 40         # ssr0 idx cfg
    la t1, data
    scfgw t1, 44         # ssr0 idx base
    la t1, idx
    scfgw t1, 48         # arm 1-dim read
    li t0, 5
    scfgw t0, 10
    li t0, 8
    scfgw t0, 26
    la t1, out
    scfgw t1, 66
    csrwi ssr_enable, 1
    li t2, 5
    frep.o t2, 1
    fadd.d ft2, ft0, ft0
    csrwi ssr_enable, 0
    ecall
  )");
}

} // namespace
} // namespace sch
