// Fast-path equivalence suite: every host-speed optimization in the two
// engines -- the ISS's threaded superblock dispatch (fast_dispatch), the
// TCDM bank-mask arbiter (tcdm.fast_arb) and the cluster's halted-cores
// DMA-startup fast-forward (fast_forward) -- must be TIMING-INVISIBLE.
// Each toggle is forced off individually against the all-on default and
// the resulting RunReports must be bit-identical: cycles, the full
// PerfCounters block (aggregate and per core), TCDM contention stats,
// DMA stats, energy, ISS instruction counts and lockstep verdicts.
//
// Two workload sources:
//  * a registry-kernel sample covering chaining, FREP, indirect streams,
//    DMA double buffering (which exercises fast-forward) and a 4-core
//    cluster (which exercises the bank-mask arbiter under contention);
//  * pinned-seed differential-fuzz programs over the full block
//    vocabulary, run exactly like the fuzz campaign (both engines in
//    lockstep with full-memory compare).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.hpp"
#include "fuzz/fuzz.hpp"

namespace sch::api {
namespace {

struct Toggles {
  bool fast_dispatch;
  bool fast_arb;
  bool fast_forward;
};

constexpr Toggles kAllOn{true, true, true};
constexpr Toggles kNoDispatch{false, true, true};
constexpr Toggles kNoFastArb{true, false, true};
constexpr Toggles kNoFastForward{true, true, false};

RunReport run_with(RunRequest request, const Toggles& t) {
  request.config.fast_dispatch = t.fast_dispatch;
  request.config.tcdm.fast_arb = t.fast_arb;
  request.config.fast_forward = t.fast_forward;
  return run(request);
}

/// Field-wise report equality. Doubles compare exactly: both runs execute
/// the identical arithmetic over identical counters, so any difference is
/// a fast-path leak, not a rounding artifact.
void expect_identical(const RunReport& fast, const RunReport& slow,
                      const std::string& what) {
  EXPECT_EQ(fast.ok, slow.ok) << what;
  EXPECT_EQ(fast.error, slow.error) << what;
  EXPECT_EQ(fast.cycles, slow.cycles) << what;
  EXPECT_EQ(fast.iss_instructions, slow.iss_instructions) << what;
  EXPECT_EQ(fast.mismatches, slow.mismatches) << what;
  EXPECT_EQ(fast.lockstep_mismatches, slow.lockstep_mismatches) << what;
  EXPECT_TRUE(fast.perf == slow.perf) << what << ": aggregate perf differs";
  EXPECT_EQ(fast.fpu_utilization, slow.fpu_utilization) << what;

  EXPECT_EQ(fast.num_cores, slow.num_cores) << what;
  ASSERT_EQ(fast.cores.size(), slow.cores.size()) << what;
  for (usize i = 0; i < fast.cores.size(); ++i) {
    EXPECT_EQ(fast.cores[i].cycles, slow.cores[i].cycles)
        << what << ": core " << i;
    EXPECT_EQ(fast.cores[i].fpu_utilization, slow.cores[i].fpu_utilization)
        << what << ": core " << i;
    EXPECT_TRUE(fast.cores[i].perf == slow.cores[i].perf)
        << what << ": core " << i << " perf differs";
  }

  EXPECT_EQ(fast.tcdm_reads, slow.tcdm_reads) << what;
  EXPECT_EQ(fast.tcdm_writes, slow.tcdm_writes) << what;
  EXPECT_EQ(fast.tcdm_conflicts, slow.tcdm_conflicts) << what;
  EXPECT_EQ(fast.tcdm_out_of_range, slow.tcdm_out_of_range) << what;
  EXPECT_TRUE(fast.tcdm_top_banks == slow.tcdm_top_banks)
      << what << ": conflict histogram differs";

  EXPECT_EQ(fast.dma.transfers, slow.dma.transfers) << what;
  EXPECT_EQ(fast.dma.bytes, slow.dma.bytes) << what;
  EXPECT_EQ(fast.dma.busy_cycles, slow.dma.busy_cycles) << what;
  EXPECT_EQ(fast.dma.startup_cycles, slow.dma.startup_cycles) << what;
  EXPECT_EQ(fast.dma.tcdm_conflicts, slow.dma.tcdm_conflicts) << what;
  EXPECT_EQ(fast.dma.queue_full_stalls, slow.dma.queue_full_stalls) << what;
  EXPECT_EQ(fast.dma.achieved_bytes_per_cycle,
            slow.dma.achieved_bytes_per_cycle)
      << what;

  EXPECT_EQ(fast.energy.breakdown.total_pj, slow.energy.breakdown.total_pj)
      << what;
  EXPECT_EQ(fast.energy.breakdown.int_core_pj,
            slow.energy.breakdown.int_core_pj)
      << what;
  EXPECT_EQ(fast.energy.breakdown.fpu_pj, slow.energy.breakdown.fpu_pj) << what;
  EXPECT_EQ(fast.energy.breakdown.tcdm_pj, slow.energy.breakdown.tcdm_pj)
      << what;
  EXPECT_EQ(fast.energy.breakdown.chain_pj, slow.energy.breakdown.chain_pj)
      << what;
  EXPECT_EQ(fast.energy.power_mw, slow.energy.power_mw) << what;
  EXPECT_EQ(fast.energy.fpu_ops_per_joule, slow.energy.fpu_ops_per_joule)
      << what;
}

void expect_toggle_invisible(const RunRequest& request,
                             const std::string& label) {
  const RunReport all_on = run_with(request, kAllOn);
  expect_identical(all_on, run_with(request, kNoDispatch),
                   label + " [fast_dispatch off]");
  expect_identical(all_on, run_with(request, kNoFastArb),
                   label + " [tcdm.fast_arb off]");
  expect_identical(all_on, run_with(request, kNoFastForward),
                   label + " [fast_forward off]");
}

// --- registry-kernel sample --------------------------------------------------

struct KernelCase {
  const char* kernel;
  const char* variant;
  u32 num_cores;
};

// Chaining, FREP, indirect gather, DMA double buffering (fast-forward's
// only trigger) and multi-core TCDM contention are all represented.
const KernelCase kKernelCases[] = {
    {"vecop", "chained+frep", 1},
    {"gemm", "chained", 1},
    {"conv2d", "chained", 1},
    {"box3d1r", "Chaining+", 1},
    {"axpy", "chained_dma", 1},
    {"axpy", "chained_dbuf", 1},
    {"gemv", "chained_dbuf", 1},
    {"vecop", "chained_par", 4},
    {"gemv", "chained_par", 4},
    {"axpy", "chained_dbuf", 4},
};

TEST(FastPathEquiv, KernelSampleBitIdenticalWithEachFastPathOff) {
  for (const KernelCase& c : kKernelCases) {
    RunRequest request =
        RunRequest::for_kernel(c.kernel, c.variant, {}, EngineSel::kBoth);
    request.config.num_cores = c.num_cores;
    expect_toggle_invisible(request, std::string(c.kernel) + "/" + c.variant +
                                         "@" + std::to_string(c.num_cores));
  }
}

// --- pinned-seed fuzz programs -----------------------------------------------

// Mirrors fuzz::run_spec (differ.cpp): both engines in lockstep, full
// final-memory compare, the campaign's cycle/deadlock budgets. Rebuilt here
// because run_spec does not expose the SimConfig fast-path knobs.
RunRequest fuzz_request(const fuzz::ProgramSpec& spec, u64 seed) {
  RunRequest request = RunRequest::for_programs(
      fuzz::materialize(spec), "fuzz/seed=" + std::to_string(seed),
      EngineSel::kBoth);
  request.lockstep_compare_memory = true;
  request.config.max_cycles = 2'000'000;
  request.config.deadlock_cycles = 20'000;
  return request;
}

TEST(FastPathEquiv, FuzzProgramsBitIdenticalWithEachFastPathOff) {
  constexpr u64 kCampaignSeed = 0xFA57'0001;
  constexpr u32 kRuns = 100;
  for (u32 i = 0; i < kRuns; ++i) {
    const u64 seed = kCampaignSeed + i;
    const fuzz::ProgramSpec spec = fuzz::generate_spec(seed);
    expect_toggle_invisible(fuzz_request(spec, seed),
                            "fuzz seed " + std::to_string(seed));
  }
}

} // namespace
} // namespace sch::api
