// Assembler tests: syntax coverage, labels, pseudo-instructions, data
// directives, error reporting, and the paper's Fig. 1 listings verbatim.
#include <gtest/gtest.h>

#include <cstring>

#include "asm/assembler.hpp"
#include "asm/builder.hpp"
#include "isa/decode.hpp"
#include "isa/disasm.hpp"
#include "isa/reg.hpp"

namespace sch {
namespace {

using assembler::assemble;

Program ok(std::string_view src) {
  auto r = assemble(src);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

std::string err(std::string_view src) {
  auto r = assemble(src);
  EXPECT_FALSE(r.ok());
  return r.ok() ? "" : r.status().message();
}

TEST(Assembler, EmptyAndComments) {
  const Program p = ok(R"(
  # a comment
  // another

)");
  EXPECT_EQ(p.num_instrs(), 0u);
}

TEST(Assembler, BasicArithmetic) {
  const Program p = ok(R"(add a0, a1, a2
addi t0, t1, -42
)");
  ASSERT_EQ(p.num_instrs(), 2u);
  EXPECT_EQ(isa::disassemble(p.instrs[0]), "add a0, a1, a2");
  EXPECT_EQ(isa::disassemble(p.instrs[1]), "addi t0, t1, -42");
}

TEST(Assembler, LoadsStores) {
  const Program p = ok(R"(
    lw a0, 8(sp)
    sw a0, -4(sp)
    fld ft0, 0(a1)
    fsd ft0, 16(a1)
    flw ft1, (a2)
  )");
  ASSERT_EQ(p.num_instrs(), 5u);
  EXPECT_EQ(p.instrs[0].imm, 8);
  EXPECT_EQ(p.instrs[1].imm, -4);
  EXPECT_EQ(p.instrs[4].imm, 0);
}

TEST(Assembler, BranchToLabelForwardAndBack) {
  const Program p = ok(R"(
loop:
    addi a0, a0, -1
    bnez a0, loop
    beq a1, a2, done
    nop
done:
    ret
  )");
  ASSERT_EQ(p.num_instrs(), 5u);
  EXPECT_EQ(p.instrs[1].imm, -4);  // back to loop
  EXPECT_EQ(p.instrs[2].imm, 8);   // forward over nop
}

TEST(Assembler, PaperFig1aBaseline) {
  // Fig. 1(a) with inline-asm style operands, verbatim modulo symbol defs.
  const Program p = ok(R"(
    .equ i, 11
    .equ len, 12
loop:
    fadd.d ft3, ft0, ft1
    fmul.d ft2, ft3, fa0
    addi %[i], %[i], 1
    bneq %[i], %[len], -12
  )");
  ASSERT_EQ(p.num_instrs(), 4u);
  EXPECT_EQ(isa::disassemble(p.instrs[0]), "fadd.d ft3, ft0, ft1");
  EXPECT_EQ(isa::disassemble(p.instrs[1]), "fmul.d ft2, ft3, fa0");
  // %[i] resolves to x11 == a1 via .equ.
  EXPECT_EQ(p.instrs[2].rd, isa::kA1);
  EXPECT_EQ(p.instrs[3].mn, isa::Mnemonic::kBne);
  EXPECT_EQ(p.instrs[3].imm, -12);
}

TEST(Assembler, PaperFig1cChaining) {
  const Program p = ok(R"(
    li t0, 8
    csrs 0x7C3, t0
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    addi a1, a1, 4
    bneq a1, a2, -36
    csrs 0x7C3, x0
  )");
  ASSERT_EQ(p.num_instrs(), 13u);
  EXPECT_EQ(p.instrs[0].imm, 8); // li -> addi x5, x0, 8
  EXPECT_EQ(p.instrs[1].mn, isa::Mnemonic::kCsrrs);
  EXPECT_EQ(p.instrs[1].imm, 0x7C3);
}

TEST(Assembler, LiExpansions) {
  const Program p = ok(R"(
    li a0, 0
    li a1, 2047
    li a2, -2048
    li a3, 4096
    li a4, 0x12345678
    li a5, -1
  )");
  // 0, 2047, -2048, -1 -> 1 instr; 4096 -> lui only; 0x12345678 -> lui+addi.
  ASSERT_EQ(p.num_instrs(), 1 + 1 + 1 + 1 + 2 + 1u);
}

TEST(Assembler, LiValuesViaDecode) {
  const Program p = ok(R"(li a4, 0x12345678
li a5, -123456
)");
  // Verify lui+addi pairs reconstruct the constants.
  auto value_of = [&](usize first) -> u32 {
    u32 v = static_cast<u32>(p.instrs[first].imm) << 12;
    return v + static_cast<u32>(p.instrs[first + 1].imm);
  };
  EXPECT_EQ(value_of(0), 0x12345678u);
  EXPECT_EQ(value_of(2), static_cast<u32>(-123456));
}

TEST(Assembler, CsrNamesAndPseudo) {
  const Program p = ok(R"(
    csrr a0, fcsr
    csrw chain_mask, a1
    csrs ssr_enable, a2
    csrwi 0x7C0, 1
    csrsi chain_mask, 8
  )");
  ASSERT_EQ(p.num_instrs(), 5u);
  EXPECT_EQ(p.instrs[1].imm, 0x7C3);
  EXPECT_EQ(p.instrs[2].imm, 0x7C0);
  EXPECT_EQ(p.instrs[4].rs1, 8); // zimm
}

TEST(Assembler, CustomInstructions) {
  const Program p = ok(R"(
    frep.o t0, 4
    frep.i t1, 1
    scfgw a0, 9
    scfgr a1, 1
  )");
  ASSERT_EQ(p.num_instrs(), 4u);
  EXPECT_EQ(p.instrs[0].mn, isa::Mnemonic::kFrepO);
  EXPECT_EQ(p.instrs[0].imm, 4);
  EXPECT_EQ(p.instrs[2].mn, isa::Mnemonic::kScfgw);
}

TEST(Assembler, FpPseudo) {
  const Program p = ok(R"(
    fmv.d ft4, ft5
    fabs.d ft6, ft7
    fneg.d fa0, fa1
  )");
  ASSERT_EQ(p.num_instrs(), 3u);
  EXPECT_EQ(p.instrs[0].mn, isa::Mnemonic::kFsgnjD);
  EXPECT_EQ(p.instrs[1].mn, isa::Mnemonic::kFsgnjxD);
  EXPECT_EQ(p.instrs[2].mn, isa::Mnemonic::kFsgnjnD);
}

TEST(Assembler, DataDirectives) {
  const Program p = ok(R"(
    .data
coeffs:
    .double 1.0, 2.5, -0.5
values:
    .word 42, 0x10
idx:
    .half 1, 2, 3
    .text
    la a0, coeffs
    lw a1, 0(a0)
  )");
  EXPECT_EQ(p.symbol("coeffs"), memmap::kTcdmBase);
  EXPECT_EQ(p.symbol("values"), memmap::kTcdmBase + 24);
  EXPECT_EQ(p.symbol("idx"), memmap::kTcdmBase + 32);
  ASSERT_GE(p.data.size(), 38u);
  double d0;
  std::memcpy(&d0, p.data.data(), 8);
  EXPECT_EQ(d0, 1.0);
  double d2;
  std::memcpy(&d2, p.data.data() + 16, 8);
  EXPECT_EQ(d2, -0.5);
}

TEST(Assembler, AlignDirective) {
  const Program p = ok(R"(
    .data
    .byte 1
    .align 3
eight:
    .dword 7
  )");
  EXPECT_EQ(p.symbol("eight") % 8, 0u);
}

TEST(Assembler, Errors) {
  EXPECT_NE(err("bogus a0, a1\n"), "");
  EXPECT_NE(err("addi a0, a1\n"), "");            // missing imm
  EXPECT_NE(err("addi a0, a1, 5000\n"), "");      // imm out of range
  EXPECT_NE(err("beq a0, a1, nowhere\n"), "");    // undefined label
  EXPECT_NE(err("x: nop\nx: nop\n"), "");         // duplicate label
  EXPECT_NE(err(".data\n.word 1\n.text\n.word 1\n"), ""); // data dir in text
  EXPECT_NE(err("lw a0, 99999(a1)\n"), "");       // offset out of range
  const std::string e = err("nop\naddi a0, a1, bad_sym\n");
  EXPECT_NE(e.find("line 2"), std::string::npos) << e;
}

TEST(Builder, MatchesAssembler) {
  ProgramBuilder b;
  b.label("loop");
  b.fadd_d(isa::kFt3, isa::kFt0, isa::kFt1);
  b.fmul_d(isa::kFt2, isa::kFt3, isa::kFa0);
  b.addi(isa::kA1, isa::kA1, 1);
  b.bne(isa::kA1, isa::kA2, "loop");
  const Program bp = b.build();

  const Program ap = ok(R"(
loop:
    fadd.d ft3, ft0, ft1
    fmul.d ft2, ft3, fa0
    addi a1, a1, 1
    bne a1, a2, loop
  )");
  ASSERT_EQ(bp.words.size(), ap.words.size());
  for (usize i = 0; i < bp.words.size(); ++i) {
    EXPECT_EQ(bp.words[i], ap.words[i]) << "word " << i;
  }
}

TEST(Builder, DataSegmentHelpers) {
  ProgramBuilder b;
  const Addr d = b.data_f64({1.0, 2.0});
  const Addr i16 = b.data_u16({3, 4, 5});
  const Addr z = b.data_zero(16);
  b.data_label("end");
  b.nop();
  const Program p = b.build();
  EXPECT_EQ(d, memmap::kTcdmBase);
  EXPECT_EQ(i16, memmap::kTcdmBase + 16);
  EXPECT_EQ(z, memmap::kTcdmBase + 22);
  EXPECT_EQ(p.symbol("end"), memmap::kTcdmBase + 38);
}

TEST(Builder, ForwardLabelBackpatch) {
  ProgramBuilder b;
  b.beq(isa::kA0, isa::kA1, "skip");
  b.nop();
  b.nop();
  b.label("skip");
  b.ret();
  const Program p = b.build();
  EXPECT_EQ(p.instrs[0].imm, 12);
}

TEST(Builder, UndefinedLabelThrows) {
  ProgramBuilder b;
  b.j("nowhere");
  EXPECT_THROW(b.build(), std::invalid_argument);
}

} // namespace
} // namespace sch
