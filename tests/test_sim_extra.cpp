// Extended timing-model coverage: iterative FP units, integer mul/div
// latencies, f32 NaN boxing through memory, bulk-memory latency, frep.i
// timing, multi-dimensional and repeating SSR streams, TCDM port contention,
// offload-queue saturation, and trace recording.
#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "asm/assembler.hpp"
#include "iss/exec_semantics.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"

namespace sch {
namespace {

constexpr Addr kD = memmap::kTcdmBase;

Program prog(std::string_view src) {
  auto r = assembler::assemble(src);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

struct R {
  HaltReason halt;
  Cycle cycles;
  sim::PerfCounters perf;
  ArchState state;
  std::string error;
};

R run(std::string_view src, Memory& mem, sim::SimConfig cfg = {}) {
  sim::Simulator s(prog(src), mem, cfg);
  const HaltReason h = s.run();
  return {h, s.cycles(), s.perf(), s.arch_state(), s.error()};
}

TEST(SimFpDiv, IterativeUnitOccupancy) {
  // Two back-to-back divides: the second waits for the unit.
  Memory mem;
  const auto r = run(R"(
    .data
v: .double 12.0, 4.0
    .text
    la a0, v
    fld ft0, 0(a0)
    fld ft1, 8(a0)
    fdiv.d ft2, ft0, ft1
    fdiv.d ft3, ft1, ft0
    fsd ft2, 16(a0)
    fsd ft3, 24(a0)
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(mem.load_f64(kD + 16), 3.0);
  EXPECT_EQ(mem.load_f64(kD + 24), 4.0 / 12.0);
  EXPECT_GE(r.perf.stall_fpu_busy, 8u); // second div blocked on the unit
  EXPECT_EQ(r.perf.fp_div_ops, 2u);
}

TEST(SimFpDiv, PipelinedOpsOverlapWithDivide) {
  // Independent fadds flow through the pipeline while the divider grinds.
  Memory mem;
  const auto r = run(R"(
    .data
v: .double 12.0, 4.0
    .text
    la a0, v
    fld ft0, 0(a0)
    fld ft1, 8(a0)
    fdiv.d ft2, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft4, ft0, ft1
    fadd.d ft5, ft0, ft1
    fadd.d ft6, ft0, ft1
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  // The adds issue while the div is busy; total must be far below
  // div_latency + 4 * add_latency.
  EXPECT_LT(r.cycles, 40u);
  EXPECT_EQ(exec::f64_of_bits(r.state.f[isa::kFt6]), 16.0);
}

TEST(SimFpSqrt, LongerThanDiv) {
  const char* divsrc = R"(
    .data
v: .double 9.0, 2.0
    .text
    la a0, v
    fld ft0, 0(a0)
    fld ft1, 8(a0)
    fdiv.d ft2, ft0, ft1
    fsd ft2, 16(a0)
    ecall
  )";
  const char* sqrtsrc = R"(
    .data
v: .double 9.0, 2.0
    .text
    la a0, v
    fld ft0, 0(a0)
    fld ft1, 8(a0)
    fsqrt.d ft2, ft0
    fsd ft2, 16(a0)
    ecall
  )";
  Memory m1, m2;
  const auto rd = run(divsrc, m1);
  const auto rs = run(sqrtsrc, m2);
  ASSERT_EQ(rd.halt, HaltReason::kEcall) << rd.error;
  ASSERT_EQ(rs.halt, HaltReason::kEcall) << rs.error;
  EXPECT_GT(rs.cycles, rd.cycles);
  EXPECT_EQ(m2.load_f64(kD + 16), 3.0);
}

TEST(SimIntMulDiv, LatencyAndBlocking) {
  Memory mem;
  const auto r = run(R"(
    li a0, 7
    li a1, 6
    mul a2, a0, a1      # pipelined: consumer stalls ~mul_latency
    add a3, a2, a2      # dependent
    div a4, a2, a1      # blocking divider
    addi a5, a4, 0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA2], 42u);
  EXPECT_EQ(r.state.x[isa::kA3], 84u);
  EXPECT_EQ(r.state.x[isa::kA4], 7u);
  EXPECT_GE(r.perf.int_div_busy, 10u);
  EXPECT_GE(r.perf.stall_int_raw, 1u); // mul consumer waited
}

TEST(SimF32, NanBoxingThroughMemory) {
  Memory mem;
  const auto r = run(R"(
    .data
v: .float 1.5, 2.5
out: .zero 8
    .text
    la a0, v
    flw ft0, 0(a0)
    flw ft1, 4(a0)
    fadd.s ft2, ft0, ft1
    fsw ft2, 8(a0)
    # Reading an f32 register as f64 must see the NaN box.
    fsd ft2, 16(a0)
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(mem.load_f32(kD + 8), 4.0f);
  EXPECT_EQ(mem.load(kD + 16, 8) >> 32, 0xFFFF'FFFFull); // boxed high bits
}

TEST(SimMainMemory, HigherLatencyRegion) {
  const char* tcdm_src = R"(
    .data
v: .word 7
    .text
    la a0, v
    lw a1, 0(a0)
    addi a2, a1, 1
    ecall
  )";
  // Same access pattern against the bulk-memory region.
  const char* main_src = R"(
    li a0, 0x20000000
    li t0, 7
    sw t0, 0(a0)
    lw a1, 0(a0)
    addi a2, a1, 1
    ecall
  )";
  Memory m1, m2;
  const auto rt = run(tcdm_src, m1);
  const auto rm = run(main_src, m2);
  ASSERT_EQ(rt.halt, HaltReason::kEcall) << rt.error;
  ASSERT_EQ(rm.halt, HaltReason::kEcall) << rm.error;
  EXPECT_EQ(rm.state.x[isa::kA2], 8u);
  EXPECT_GT(rm.cycles, rt.cycles); // bulk memory pays main_mem_latency
}

TEST(SimFrep, InnerModeTiming) {
  // frep.i repeats each instruction in place; with a dependent body this is
  // slower than frep.o (no interleaving), which is why kernels use .o.
  const char* outer = R"(
    li t0, 7
    fcvt.d.w ft1, x0
    li t1, 1
    fcvt.d.w ft2, t1
    frep.o t0, 2
    fadd.d ft1, ft1, ft2
    fadd.d ft2, ft2, ft2
    ecall
  )";
  const char* inner = R"(
    li t0, 7
    fcvt.d.w ft1, x0
    li t1, 1
    fcvt.d.w ft2, t1
    frep.i t0, 2
    fadd.d ft1, ft1, ft2
    fadd.d ft2, ft2, ft2
    ecall
  )";
  Memory m1, m2;
  const auto ro = run(outer, m1);
  const auto ri = run(inner, m2);
  ASSERT_EQ(ro.halt, HaltReason::kEcall) << ro.error;
  ASSERT_EQ(ri.halt, HaltReason::kEcall) << ri.error;
  EXPECT_EQ(ro.perf.fpu_ops, ri.perf.fpu_ops);
  EXPECT_GT(ri.perf.stall_fp_raw, ro.perf.stall_fp_raw);
}

TEST(SimSsr, TwoDimensionalStridedStream) {
  Memory mem;
  // Read a 3x4 submatrix out of a 3x8 row-major matrix, write compacted.
  const auto r = run(R"(
    .data
m: .double 0, 1, 2, 3, 4, 5, 6, 7
   .double 10, 11, 12, 13, 14, 15, 16, 17
   .double 20, 21, 22, 23, 24, 25, 26, 27
out: .zero 96
    .text
    li t0, 3
    scfgw t0, 8          # ssr0 bound0 = 3 (4 elems per row)
    li t0, 8
    scfgw t0, 24         # stride0 = 8
    li t0, 2
    scfgw t0, 12         # bound1 = 2 (3 rows)
    li t0, 40
    scfgw t0, 28         # stride1: from m[r][3] to m[r+1][0] = (8-3)*8
    la t1, m
    scfgw t1, 52         # rptr1: arm 2-D read
    li t0, 11
    scfgw t0, 10         # ssr2 bound0 = 11
    li t0, 8
    scfgw t0, 26
    la t1, out
    scfgw t1, 66
    csrwi ssr_enable, 1
    li t2, 11
    frep.o t2, 1
    fmv.d ft2, ft0
    csrwi ssr_enable, 0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  const double expect[12] = {0, 1, 2, 3, 10, 11, 12, 13, 20, 21, 22, 23};
  for (u32 i = 0; i < 12; ++i) {
    EXPECT_EQ(mem.load_f64(kD + 192 + 8 * i), expect[i]) << i;
  }
}

TEST(SimSsr, RepeatWithTwoDims) {
  Memory mem;
  // Two elements, each repeated twice, looped twice: 0 0 8 8 0 0 8 8.
  const auto r = run(R"(
    .data
v: .double 5.0, 6.0
out: .zero 64
    .text
    li t0, 1
    scfgw t0, 4          # repeat = 1 -> 2 pops per element
    li t0, 1
    scfgw t0, 8          # bound0 = 1
    li t0, 8
    scfgw t0, 24
    li t0, 1
    scfgw t0, 12         # bound1 = 1 (loop twice)
    li t0, -8
    scfgw t0, 28         # wrap back
    la t1, v
    scfgw t1, 52         # 2-D read
    li t0, 7
    scfgw t0, 10
    li t0, 8
    scfgw t0, 26
    la t1, out
    scfgw t1, 66
    csrwi ssr_enable, 1
    li t2, 7
    frep.o t2, 1
    fmv.d ft2, ft0
    csrwi ssr_enable, 0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  const double expect[8] = {5, 5, 6, 6, 5, 5, 6, 6};
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(mem.load_f64(kD + 16 + 8 * i), expect[i]) << i;
  }
}

TEST(SimSsr, IndirectScatterTiming) {
  Memory mem;
  const auto r = run(R"(
    .data
vals: .double 1.5, 2.5, 3.5
idx: .half 4, 0, 2
    .balign 8
win: .zero 64
    .text
    # SSR0 reads vals; SSR2 scatters via idx into win.
    li t0, 2
    scfgw t0, 8
    li t0, 8
    scfgw t0, 24
    la t1, vals
    scfgw t1, 48
    li t0, 2
    scfgw t0, 10
    li t0, 2
    scfgw t0, 26         # stride over idx array
    li t0, 0x10031
    scfgw t0, 42         # ssr2 idx cfg: indirect, shift 3, u16
    la t1, win
    scfgw t1, 46         # ssr2 idx base
    la t1, idx
    scfgw t1, 66         # ssr2 wptr0: scatter armed
    csrwi ssr_enable, 1
    li t2, 2
    frep.o t2, 1
    fmv.d ft2, ft0
    csrwi ssr_enable, 0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  const Addr win = kD + 32;
  EXPECT_EQ(mem.load_f64(win + 8 * 4), 1.5);
  EXPECT_EQ(mem.load_f64(win + 8 * 0), 2.5);
  EXPECT_EQ(mem.load_f64(win + 8 * 2), 3.5);
}

TEST(SimTcdm, PortContentionCountsConflicts) {
  // Four streams + core stores hammering one bank (every address maps to
  // bank 0 with stride 256 = 32 banks * 8B).
  Memory mem;
  const auto r = run(R"(
    .data
a: .zero 8192
    .text
    li t0, 31
    scfgw t0, 8
    li t0, 256
    scfgw t0, 24
    la t1, a
    scfgw t1, 48
    li t0, 31
    scfgw t0, 9
    li t0, 256
    scfgw t0, 25
    la t1, a
    scfgw t1, 49
    csrwi ssr_enable, 1
    li t2, 31
    frep.o t2, 1
    fadd.d ft3, ft0, ft1
    csrwi ssr_enable, 0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  // Both streams always target bank 0 -> heavy conflicts, but completion.
  EXPECT_GE(r.perf.fpu_ops, 32u);
}

TEST(SimQueue, OffloadBackpressureCounted) {
  // A long burst of dependent FP ops fills the 8-deep queue and stalls the
  // integer core.
  Memory mem;
  std::string src = R"(
    .data
v: .double 1.0, 2.0
    .text
    la a0, v
    fld ft0, 0(a0)
    fld ft1, 8(a0)
)";
  for (int i = 0; i < 24; ++i) src += "    fadd.d ft2, ft2, ft1\n";
  src += "    ecall\n";
  const auto r = run(src, mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_GT(r.perf.stall_offload_full, 10u);
}

TEST(SimTrace, TraceObserverRecordsIssueAndPipeline) {
  // Trace recording is an Observer client of the unified engine: one entry
  // per simulated cycle, rebuilt from the public simulator surface.
  api::RunRequest request = api::RunRequest::for_program(prog(R"(
    li a0, 1
    li a1, 2
    add a2, a0, a1
    ecall
  )"));
  request.config.trace = true;
  api::TraceObserver tracer;
  request.observers.push_back(&tracer);
  const api::RunReport report = api::run(request);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_FALSE(tracer.trace().entries().empty());
  EXPECT_EQ(tracer.trace().entries().size(), report.cycles);
  // The issue table must mention the add.
  EXPECT_NE(tracer.trace().format_issue_table().find("add a2, a0, a1"),
            std::string::npos);
}

TEST(SimCsr, InstretCountsRetired) {
  Memory mem;
  const auto r = run(R"(
    csrr a0, instret
    nop
    nop
    csrr a1, instret
    sub a2, a1, a0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA2], 3u); // nop, nop, csrr
}

TEST(SimJumps, CallReturnLinkage) {
  Memory mem;
  const auto r = run(R"(
    li a0, 5
    call double_it
    call double_it
    ecall
double_it:
    add a0, a0, a0
    ret
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA0], 20u);
  EXPECT_GE(r.perf.branch_bubbles, 4u); // two calls + two returns
}

} // namespace
} // namespace sch
