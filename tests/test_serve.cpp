// Serving-layer coverage: the keyed build cache (exact hit/miss counters,
// full timing-field key coverage, LRU eviction, in-flight dedup under
// concurrency, error propagation), cached-vs-uncached report determinism,
// the ReportCache memoization contract, NDJSON session behavior (FIFO
// ordering, malformed-input hardening over the serve corpus, oversized
// lines, shutdown), rollup math, the streaming scenario writer and the TCP
// front-end.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/build_cache.hpp"
#include "api/engine.hpp"
#include "kernels/registry.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scenario_runner.hpp"
#include "serve/fdstream.hpp"
#include "serve/rollup.hpp"
#include "serve/server.hpp"

#if defined(SCH_SERVE_HAVE_FDSTREAM)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#endif

namespace sch::serve {
namespace {

using api::BuildCache;
using scenario::Json;

const kernels::KernelEntry& entry(const std::string& name) {
  const kernels::KernelEntry* e = kernels::Registry::instance().find(name);
  EXPECT_NE(e, nullptr) << name;
  return *e;
}

/// Run one full NDJSON session against `server` and parse the responses.
std::vector<Json> serve_lines(Server& server, const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  server.serve(in, out);
  std::vector<Json> lines;
  std::istringstream rs(out.str());
  std::string line;
  while (std::getline(rs, line)) {
    if (line.empty()) continue;
    Result<Json> parsed = Json::parse(line);
    EXPECT_TRUE(parsed.ok()) << "unparseable response: " << line;
    if (parsed.ok()) lines.push_back(std::move(parsed).value());
  }
  return lines;
}

std::string type_of(const Json& line) {
  const Json* t = line.get("type");
  return t != nullptr && t->is_string() ? t->as_string() : "";
}

/// Strip every "wall_s" key, recursively -- the one nondeterministic field
/// of a report row.
Json strip_wall_s(const Json& v) {
  if (v.is_object()) {
    Json o = Json::object();
    for (const auto& [k, child] : v.members()) {
      if (k == "wall_s") continue;
      o.set(k, strip_wall_s(child));
    }
    return o;
  }
  if (v.is_array()) {
    Json a = Json::array();
    for (const Json& child : v.items()) a.push_back(strip_wall_s(child));
    return a;
  }
  return v;
}

// --- BuildCache: counters, key coverage, eviction, concurrency --------------

TEST(BuildCache, ExactHitMissCountersAndSharing) {
  BuildCache cache(8);
  const kernels::KernelEntry& axpy = entry("axpy");
  const kernels::SizeMap sizes = axpy.resolve_sizes({{"n", 64}});
  const sim::SimConfig config;

  const BuildCache::Ptr a = cache.get_or_build(axpy, "baseline", sizes, config);
  const BuildCache::Ptr b = cache.get_or_build(axpy, "baseline", sizes, config);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get()) << "hit must share the built kernel, not copy";
  // A cached Program arrives predecoded: the engines' ensure_predecoded()
  // finds the pass already done.
  EXPECT_EQ(a->program.pre.size(), a->program.instrs.size());

  BuildCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 0u);

  // A different variant is a different key.
  (void)cache.get_or_build(axpy, "chained", sizes, config);
  s = cache.stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(BuildCache, KeyCoversEveryTimingRelevantConfigField) {
  // Every SimConfig field that can change a build or a simulated report
  // must appear in the fingerprint: a stale-key bug here silently serves
  // wrong timing. Each mutator flips exactly one field.
  using Mut = void (*)(sim::SimConfig&);
  const std::pair<const char*, Mut> mutators[] = {
      {"fpu_depth", [](sim::SimConfig& c) { c.fpu_depth = 5; }},
      {"fdiv_latency", [](sim::SimConfig& c) { c.fdiv_latency = 13; }},
      {"fsqrt_latency", [](sim::SimConfig& c) { c.fsqrt_latency = 29; }},
      {"int_mul_latency", [](sim::SimConfig& c) { c.int_mul_latency = 4; }},
      {"int_div_latency", [](sim::SimConfig& c) { c.int_div_latency = 25; }},
      {"fp_queue_depth", [](sim::SimConfig& c) { c.fp_queue_depth = 3; }},
      {"seq_buffer_depth", [](sim::SimConfig& c) { c.seq_buffer_depth = 5; }},
      {"load_latency", [](sim::SimConfig& c) { c.load_latency = 2; }},
      {"main_mem_latency", [](sim::SimConfig& c) { c.main_mem_latency = 20; }},
      {"main_mem_bytes_per_cycle",
       [](sim::SimConfig& c) { c.main_mem_bytes_per_cycle = 16; }},
      {"dma_queue_depth", [](sim::SimConfig& c) { c.dma_queue_depth = 2; }},
      {"taken_branch_penalty",
       [](sim::SimConfig& c) { c.taken_branch_penalty = 3; }},
      {"strict_chain_handoff",
       [](sim::SimConfig& c) { c.strict_chain_handoff = true; }},
      {"num_cores", [](sim::SimConfig& c) { c.num_cores = 2; }},
      {"tcdm.num_banks", [](sim::SimConfig& c) { c.tcdm.num_banks = 16; }},
      {"tcdm.bank_word_log2",
       [](sim::SimConfig& c) { c.tcdm.bank_word_log2 = 2; }},
      {"tcdm.fast_arb", [](sim::SimConfig& c) { c.tcdm.fast_arb = !c.tcdm.fast_arb; }},
      {"ssr.data_fifo_depth",
       [](sim::SimConfig& c) { c.ssr.data_fifo_depth = 7; }},
      {"ssr.idx_queue_depth",
       [](sim::SimConfig& c) { c.ssr.idx_queue_depth = 5; }},
      {"ssr.write_fifo_depth",
       [](sim::SimConfig& c) { c.ssr.write_fifo_depth = 3; }},
      {"max_cycles", [](sim::SimConfig& c) { c.max_cycles = 12345; }},
      {"deadlock_cycles", [](sim::SimConfig& c) { c.deadlock_cycles = 777; }},
      {"fast_forward", [](sim::SimConfig& c) { c.fast_forward = false; }},
      {"fast_dispatch", [](sim::SimConfig& c) { c.fast_dispatch = false; }},
  };

  const kernels::SizeMap sizes{{"n", 64}};
  const sim::SimConfig base;
  const std::string base_key = BuildCache::make_key("axpy", "baseline", sizes, base);
  for (const auto& [name, mutate] : mutators) {
    sim::SimConfig c;
    mutate(c);
    EXPECT_NE(BuildCache::make_key("axpy", "baseline", sizes, c), base_key)
        << "fingerprint must cover SimConfig field: " << name;
  }

  // And the deliberate exclusions: pure observability knobs must NOT shred
  // the hit rate (docs/SERVE.md pins this contract).
  sim::SimConfig c = base;
  c.trace = true;
  c.max_wall_ms = 5000;
  c.faults = std::make_shared<const sim::FaultPlan>();
  EXPECT_EQ(BuildCache::make_key("axpy", "baseline", sizes, c), base_key)
      << "trace/max_wall_ms/faults are observability knobs, not key fields";

  // Kernel, variant and sizes all key.
  EXPECT_NE(BuildCache::make_key("dot", "baseline", sizes, base), base_key);
  EXPECT_NE(BuildCache::make_key("axpy", "chained", sizes, base), base_key);
  EXPECT_NE(BuildCache::make_key("axpy", "baseline", {{"n", 128}}, base), base_key);
}

TEST(BuildCache, LruEvictionKeepsRecentlyUsed) {
  BuildCache cache(2);
  const kernels::KernelEntry& axpy = entry("axpy");
  const sim::SimConfig config;
  const auto build_n = [&](i64 n) {
    return cache.get_or_build(axpy, "baseline", axpy.resolve_sizes({{"n", n}}),
                              config);
  };
  (void)build_n(16);
  (void)build_n(32);
  (void)build_n(16);  // touch 16: 32 becomes the LRU victim
  (void)build_n(64);  // evicts 32
  BuildCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);

  (void)build_n(16);  // still resident
  EXPECT_EQ(cache.stats().hits, 2u);
  (void)build_n(32);  // evicted above: a fresh miss
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(BuildCache, CapacityZeroDisablesCaching) {
  BuildCache cache(0);
  const kernels::KernelEntry& axpy = entry("axpy");
  const kernels::SizeMap sizes = axpy.resolve_sizes({{"n", 64}});
  const BuildCache::Ptr a = cache.get_or_build(axpy, "baseline", sizes, {});
  const BuildCache::Ptr b = cache.get_or_build(axpy, "baseline", sizes, {});
  ASSERT_NE(a, nullptr);
  EXPECT_NE(a.get(), b.get());
  const BuildCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses + s.entries, 0u);
}

TEST(BuildCache, BuilderErrorsPropagateAndAreNeverCached) {
  BuildCache cache(8);
  const kernels::KernelEntry& axpy = entry("axpy");
  const kernels::SizeMap sizes = axpy.resolve_sizes({});
  EXPECT_THROW((void)cache.get_or_build(axpy, "warp_variant", sizes, {}),
               std::invalid_argument);
  EXPECT_THROW((void)cache.get_or_build(axpy, "warp_variant", sizes, {}),
               std::invalid_argument);
  const BuildCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 0u) << "failed builds must not be cached";
  EXPECT_EQ(s.misses, 2u) << "each failed attempt re-runs the builder";
}

TEST(BuildCache, ConcurrentLookupsBuildOnceWithExactCounters) {
  // N threads x M lookups over K keys. The in-flight dedup makes the
  // counters exact and scheduling-independent: exactly K misses (the
  // unique creators), everything else a hit. TSan CI runs this test.
  constexpr usize kThreads = 8;
  constexpr usize kLookups = 24;
  constexpr i64 kKeys = 4;
  BuildCache cache(16);
  const kernels::KernelEntry& axpy = entry("axpy");
  const sim::SimConfig config;

  std::vector<std::vector<std::pair<i64, BuildCache::Ptr>>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (usize t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (usize i = 0; i < kLookups; ++i) {
        const i64 n = 16 << ((static_cast<i64>(t + i)) % kKeys);
        seen[t].emplace_back(n, cache.get_or_build(
            axpy, "baseline", axpy.resolve_sizes({{"n", n}}), config));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const BuildCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, static_cast<u64>(kKeys));
  EXPECT_EQ(s.hits, static_cast<u64>(kThreads * kLookups - kKeys));
  EXPECT_EQ(s.entries, static_cast<u64>(kKeys));

  // Same key -> same shared kernel, across all threads.
  std::map<i64, const kernels::BuiltKernel*> by_n;
  for (const auto& thread_ptrs : seen) {
    for (const auto& [n, p] : thread_ptrs) {
      ASSERT_NE(p, nullptr);
      auto [it, inserted] = by_n.emplace(n, p.get());
      if (!inserted) {
        EXPECT_EQ(it->second, p.get()) << "n=" << n;
      }
    }
  }
  EXPECT_EQ(by_n.size(), static_cast<usize>(kKeys));
}

// --- determinism: cached and uncached runs are bit-identical ----------------

TEST(BuildCacheDeterminism, CachedDisabledEnabledPrewarmedAllBitIdentical) {
  // The acceptance contract: a report served through the cache differs
  // from an uncached one in nothing but wall_s. Cover both engines and a
  // multi-variant job set, three ways: no cache, cold cache, pre-warmed.
  scenario::Scenario sc;
  sc.name = "determinism";
  for (const char* line : {
           R"({"kernel":"axpy","variants":["baseline","chained"],"sizes":[{"n":64}]})",
           R"({"kernel":"vecop","variants":["chained+frep"],"sizes":[{"n":64}]})",
       }) {
    Result<scenario::RunSpec> spec =
        scenario::parse_run_spec(Json::parse(line).value(), 0, Json::object(), 1);
    ASSERT_TRUE(spec.ok()) << spec.status().message();
    sc.runs.push_back(std::move(spec).value());
  }
  Result<std::vector<scenario::Job>> jobs = scenario::expand(sc);
  ASSERT_TRUE(jobs.ok()) << jobs.status().message();

  const auto reports_json = [&](api::BuildCache* cache) {
    Json rows = Json::array();
    for (const scenario::Job& job : jobs.value()) {
      for (const api::EngineSel engine :
           {api::EngineSel::kCycle, api::EngineSel::kBoth}) {
        const api::RunReport r =
            api::run(scenario::to_request(job, engine, cache));
        EXPECT_TRUE(r.ok) << r.error;
        rows.push_back(strip_wall_s(r.to_json()));
      }
    }
    return rows.dump(2);
  };

  const std::string uncached = reports_json(nullptr);
  BuildCache cache(16);
  const std::string cold = reports_json(&cache);
  const u64 cold_misses = cache.stats().misses;
  const u64 cold_hits = cache.stats().hits;
  EXPECT_GT(cold_misses, 0u);
  const std::string prewarmed = reports_json(&cache);
  // Engine selection is not part of the build key, so even the cold pass
  // can hit (kBoth reuses the entry kCycle built); the prewarmed pass must
  // add zero misses and one hit per lookup.
  EXPECT_EQ(cache.stats().misses, cold_misses)
      << "prewarmed pass must not rebuild anything";
  EXPECT_EQ(cache.stats().hits, cold_hits + cold_misses + cold_hits)
      << "prewarmed pass must hit on every lookup";
  EXPECT_EQ(uncached, cold);
  EXPECT_EQ(cold, prewarmed);
}

// --- ReportCache ------------------------------------------------------------

TEST(ReportCache, KeyIncludesEngineAndVerifyButNotRepeatIndex) {
  scenario::Scenario sc;
  sc.name = "key";
  Result<scenario::RunSpec> spec = scenario::parse_run_spec(
      Json::parse(R"({"kernel":"axpy","variants":["baseline"],"sizes":[{"n":64}]})")
          .value(),
      0, Json::object(), 2);
  ASSERT_TRUE(spec.ok());
  sc.runs.push_back(std::move(spec).value());
  Result<std::vector<scenario::Job>> jobs = scenario::expand(sc);
  ASSERT_TRUE(jobs.ok());
  ASSERT_EQ(jobs.value().size(), 2u);  // repeat=2
  ASSERT_NE(jobs.value()[0].repeat_index, jobs.value()[1].repeat_index);

  const std::string k0 =
      ReportCache::make_key(jobs.value()[0], api::EngineSel::kCycle);
  EXPECT_EQ(k0, ReportCache::make_key(jobs.value()[1], api::EngineSel::kCycle))
      << "repeats of one shape must share a key (that IS the memoization)";
  EXPECT_NE(k0, ReportCache::make_key(jobs.value()[0], api::EngineSel::kBoth));

  scenario::Job strict = jobs.value()[0];
  strict.verify = api::VerifyPolicy::kStrict;
  EXPECT_NE(k0, ReportCache::make_key(strict, api::EngineSel::kCycle));
}

TEST(ReportCache, SecondSessionServesCachedBitIdenticalReport) {
  Server server;
  const std::string req =
      R"({"id":1,"kernel":"dot","variants":["chained"],"sizes":[{"n":64}]})" "\n";
  const std::vector<Json> first = serve_lines(server, req);
  const std::vector<Json> second = serve_lines(server, req);
  ASSERT_EQ(first.size(), 2u);   // report + done
  ASSERT_EQ(second.size(), 2u);
  EXPECT_FALSE(first[0].get("cached")->as_bool());
  EXPECT_TRUE(second[0].get("cached")->as_bool())
      << "second session must be served from the report cache";
  // The memoized row replays the original run verbatim -- wall_s included.
  EXPECT_EQ(first[0].get("report")->dump(), second[0].get("report")->dump());
  EXPECT_GE(server.report_cache().stats().hits, 1u);
}

TEST(ReportCache, DropCachesEmptiesBothCaches) {
  Server server;
  (void)serve_lines(server,
                    R"({"kernel":"axpy","variants":["baseline"],"sizes":[{"n":64}]})"
                    "\n");
  EXPECT_GT(server.build_cache().stats().entries, 0u);
  const std::vector<Json> lines =
      serve_lines(server, "{\"op\":\"drop-caches\",\"id\":9}\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(type_of(lines[0]), "dropped");
  EXPECT_EQ(server.build_cache().stats().entries, 0u);
  EXPECT_EQ(server.report_cache().stats().entries, 0u);
}

// --- NDJSON sessions --------------------------------------------------------

TEST(ServeSession, FifoOrderAcrossMixedRequests) {
  Server server;
  const std::vector<Json> lines = serve_lines(
      server,
      "{\"op\":\"ping\",\"id\":1}\n"
      R"({"id":2,"kernel":"axpy","variants":["baseline","chained"],"sizes":[{"n":64}]})"
      "\n"
      "{\"op\":\"stats\",\"id\":3}\n"
      R"({"id":4,"kernel":"warp_drive","variants":["x"]})" "\n"
      "{\"op\":\"ping\",\"id\":5}\n");
  // Response order is request order; the run request contributes its
  // report lines (job order) then its done line.
  std::vector<std::string> types;
  types.reserve(lines.size());
  for (const Json& l : lines) types.push_back(type_of(l));
  const std::vector<std::string> expect = {"pong",   "report", "report",
                                           "done",   "stats",  "error",
                                           "pong"};
  EXPECT_EQ(types, expect);
  EXPECT_EQ(lines[1].get("seq")->as_i64(), 0);
  EXPECT_EQ(lines[2].get("seq")->as_i64(), 1);
  EXPECT_EQ(lines[2].get("of")->as_i64(), 2);
  EXPECT_EQ(lines[3].get("id")->as_i64(), 2);
  EXPECT_EQ(lines[3].get("rollup")->get("ok")->as_i64(), 2);
  EXPECT_EQ(lines[5].get("failure")->get("kind")->as_string(), "validation");
}

TEST(ServeSession, UnknownKernelIsStructuredValidationError) {
  Server server;
  const std::vector<Json> lines = serve_lines(
      server, R"({"id":7,"kernel":"warp_drive","variants":["chained"]})" "\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(type_of(lines[0]), "error");
  EXPECT_EQ(lines[0].get("id")->as_i64(), 7);
  EXPECT_NE(lines[0].get("error")->as_string().find("warp_drive"),
            std::string::npos);
  EXPECT_EQ(lines[0].get("failure")->get("kind")->as_string(), "validation");
}

TEST(ServeSession, OversizedLineRejectedAndSessionSurvives) {
  ServerOptions opts;
  opts.max_line_bytes = 128;
  Server server(opts);
  std::string input(4096, 'x');
  input += "\n{\"op\":\"ping\",\"id\":\"alive\"}\n";
  const std::vector<Json> lines = serve_lines(server, input);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(type_of(lines[0]), "error");
  EXPECT_NE(lines[0].get("error")->as_string().find("128"), std::string::npos);
  EXPECT_EQ(type_of(lines[1]), "pong");
  EXPECT_EQ(lines[1].get("id")->as_string(), "alive");
}

TEST(ServeSession, ShutdownOpEndsSessionWithBye) {
  Server server;
  std::istringstream in(
      "{\"op\":\"shutdown\",\"id\":1}\n{\"op\":\"ping\",\"id\":2}\n");
  std::ostringstream out;
  EXPECT_TRUE(server.serve(in, out)) << "serve() must report the shutdown";
  std::vector<Json> lines;
  std::istringstream rs(out.str());
  std::string line;
  while (std::getline(rs, line)) {
    if (!line.empty()) lines.push_back(Json::parse(line).value());
  }
  ASSERT_EQ(lines.size(), 1u) << "lines after shutdown must not be processed";
  EXPECT_EQ(type_of(lines[0]), "bye");
}

#ifdef SCH_CORPUS_DIR
TEST(ServeSession, EveryCorpusInputGetsStructuredResponsesAndSurvives) {
  // tests/corpus/serve/ holds hostile NDJSON request streams: binary
  // garbage, truncations, wrong types, unknown ops/kernels/keys, huge
  // numbers, deep nesting. The contract: every line is answered with a
  // structured response (or skipped if blank), the daemon never crashes or
  // wedges, and the session still answers a trailing ping.
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(SCH_CORPUS_DIR) / "serve";
  ASSERT_TRUE(fs::exists(dir)) << dir << " missing (build config problem)";
  Server server;  // one shared server: a bad session must not poison the next
  u32 seen = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    SCOPED_TRACE(e.path().filename().string());
    std::ifstream in(e.path(), std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string input = ss.str();
    if (!input.empty() && input.back() != '\n') input += '\n';
    input += "{\"op\":\"ping\",\"id\":\"alive\"}\n";
    const std::vector<Json> lines = serve_lines(server, input);
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(type_of(lines.back()), "pong") << "stream must survive";
    EXPECT_EQ(lines.back().get("id")->as_string(), "alive");
    for (const Json& l : lines) {
      const std::string t = type_of(l);
      EXPECT_TRUE(t == "report" || t == "done" || t == "error" || t == "pong" ||
                  t == "stats" || t == "dropped" || t == "bye")
          << "unknown response type: " << t;
      if (t == "error") {
        EXPECT_FALSE(l.get("error")->as_string().empty());
        EXPECT_EQ(l.get("failure")->get("kind")->as_string(), "validation");
      }
    }
    ++seen;
  }
  EXPECT_GE(seen, 16u) << "corpus unexpectedly small -- files not checked in?";
}
#endif // SCH_CORPUS_DIR

// --- rollup math ------------------------------------------------------------

TEST(Rollup, GeomeanPercentilesAndFailureKinds) {
  Rollup rollup;
  const auto ok_report = [](u64 cycles, double util) {
    api::RunReport r;
    r.ok = true;
    r.cycles = cycles;
    r.fpu_utilization = util;
    r.iss_instructions = 10;
    r.useful_flops = 5;
    r.tcdm_reads = 100;
    r.tcdm_conflicts = 7;
    r.tcdm_top_banks = {{3, 7}};
    return r;
  };
  rollup.add(ok_report(100, 0.25));
  rollup.add(ok_report(200, 0.50));
  rollup.add(ok_report(400, 0.75));
  api::RunReport failed;
  failed.ok = false;
  failed.failure.kind = api::FailureKind::kDeadlock;
  rollup.add(failed);

  const Json j = rollup.to_json();
  EXPECT_EQ(j.get("jobs")->as_i64(), 4);
  EXPECT_EQ(j.get("ok")->as_i64(), 3);
  EXPECT_EQ(j.get("failures")->as_i64(), 1);
  EXPECT_EQ(j.get("failure_kinds")->get("deadlock")->as_i64(), 1);
  // geomean(100, 200, 400) = 200 exactly.
  EXPECT_NEAR(j.get("geomean_cycles")->as_number(), 200.0, 1e-9);
  EXPECT_EQ(j.get("total_cycles")->as_i64(), 700);
  EXPECT_EQ(j.get("total_iss_instructions")->as_i64(), 30);
  EXPECT_EQ(j.get("total_useful_flops")->as_i64(), 15);
  // Nearest-rank over {0.25, 0.50, 0.75}.
  EXPECT_DOUBLE_EQ(j.get("fpu_utilization")->get("p50")->as_number(), 0.50);
  EXPECT_DOUBLE_EQ(j.get("fpu_utilization")->get("p99")->as_number(), 0.75);
  // Per-bank conflicts merge across reports: bank 3 saw 7 x 3.
  const Json* tcdm = j.get("tcdm");
  EXPECT_EQ(tcdm->get("conflicts")->as_i64(), 21);
  ASSERT_EQ(tcdm->get("top_banks")->items().size(), 1u);
  EXPECT_EQ(tcdm->get("top_banks")->items()[0].get("bank")->as_i64(), 3);
  EXPECT_EQ(tcdm->get("top_banks")->items()[0].get("conflicts")->as_i64(), 21);
}

// --- streaming scenario writer (schsim run --stream) ------------------------

TEST(StreamingScenario, EmitsServeProtocolLinesForEveryJob) {
  scenario::Scenario sc;
  sc.name = "stream_test";
  Result<scenario::RunSpec> spec = scenario::parse_run_spec(
      Json::parse(
          R"({"kernel":"vecop","variants":["baseline","chained"],"sizes":[{"n":64}]})")
          .value(),
      0, Json::object(), 1);
  ASSERT_TRUE(spec.ok());
  sc.runs.push_back(std::move(spec).value());

  std::ostringstream out;
  std::ostringstream log;
  const Result<StreamOutcome> outcome =
      run_scenario_streaming(sc, {}, out, log);
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_EQ(outcome.value().jobs, 2u);
  EXPECT_EQ(outcome.value().failures, 0u);

  std::vector<Json> lines;
  std::istringstream rs(out.str());
  std::string line;
  while (std::getline(rs, line)) {
    if (!line.empty()) lines.push_back(Json::parse(line).value());
  }
  ASSERT_EQ(lines.size(), 3u);  // 2 reports + done
  EXPECT_EQ(type_of(lines[0]), "report");
  EXPECT_EQ(lines[0].get("id")->as_string(), "stream_test");
  EXPECT_FALSE(lines[0].get("cached")->as_bool());
  EXPECT_EQ(type_of(lines[2]), "done");
  EXPECT_EQ(lines[2].get("rollup")->get("ok")->as_i64(), 2);
}

// --- TCP front-end ----------------------------------------------------------

#if defined(SCH_SERVE_HAVE_FDSTREAM)
TEST(ServeTcp, PingRunShutdownRoundTrip) {
  Server server;
  u16 port = 0;
  std::ostringstream log;
  Status listen_status;
  std::thread listener([&] {
    listen_status = serve_listen(server, 0, &port, log);
  });
  // Wait for the listener to publish its bound port.
  for (int i = 0; i < 200 && port == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (port == 0) {
    listener.detach();
    GTEST_SKIP() << "listener did not come up (sandboxed network?)";
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    listener.detach();
    GTEST_SKIP() << "cannot connect to 127.0.0.1:" << port;
  }
  const std::string request =
      "{\"op\":\"ping\",\"id\":1}\n"
      "{\"id\":2,\"kernel\":\"axpy\",\"variants\":[\"baseline\"],"
      "\"sizes\":[{\"n\":64}]}\n"
      "{\"op\":\"shutdown\",\"id\":3}\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<usize>(n));
  }
  ::close(fd);
  listener.join();
  EXPECT_TRUE(listen_status.is_ok()) << listen_status.message();

  std::vector<std::string> types;
  std::istringstream rs(response);
  std::string line;
  while (std::getline(rs, line)) {
    if (!line.empty()) types.push_back(type_of(Json::parse(line).value()));
  }
  const std::vector<std::string> expect = {"pong", "report", "done", "bye"};
  EXPECT_EQ(types, expect);
}
#endif // SCH_SERVE_HAVE_FDSTREAM

} // namespace
} // namespace sch::serve
