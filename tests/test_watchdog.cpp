// Watchdog coverage: a wedged program must FAIL (a classified RunReport,
// never an abort or a hang) on every engine and cluster size, and the
// legitimate long-spin patterns the kernels rely on must stay green.
#include <gtest/gtest.h>

#include <vector>

#include "api/engine.hpp"
#include "asm/builder.hpp"
#include "isa/csr.hpp"

namespace sch {
namespace {

using api::EngineSel;
using api::FailureKind;
using api::RunReport;
using api::RunRequest;

/// The canonical wedge: pop a chained register that nothing ever pushes.
/// Every hart executes it (single-program replication), so it deadlocks at
/// any core count. On the cycle engine the FP issue stage starves
/// (stall_chain_empty) until the watchdog fires; the ISS detects the
/// empty-FIFO pop immediately.
Program wedged_consumer() {
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0});
  b.la(isa::kT0, cst);
  b.fld(3, isa::kT0, 0);
  b.li(isa::kT1, 1u << 16);
  b.csrw(isa::csr::kChainMask, isa::kT1);
  b.fadd_d(24, 16, 3);  // pop f16: the FIFO is empty and stays empty
  b.csrwi(isa::csr::kChainMask, 0);
  b.ecall();
  return b.build();
}

TEST(Watchdog, WedgedChainConsumerFailsOnEveryEngineAndClusterSize) {
  for (const EngineSel engine :
       {EngineSel::kIss, EngineSel::kCycle, EngineSel::kBoth}) {
    for (const u32 cores : {1u, 4u}) {
      SCOPED_TRACE(std::string(api::engine_name(engine)) + "/" +
                   std::to_string(cores) + " cores");
      RunRequest req = RunRequest::for_program(wedged_consumer(), "wedge",
                                               engine);
      req.config.num_cores = cores;
      req.config.deadlock_cycles = 2000;
      req.config.max_cycles = 200000;
      const RunReport r = api::run(req);
      ASSERT_FALSE(r.ok);
      EXPECT_EQ(r.failure.kind, FailureKind::kDeadlock) << r.error;
      EXPECT_GE(r.failure.hart, 0);
    }
  }
}

TEST(Watchdog, BarrierSpinFalsePositivePinnedGreen) {
  // Hart 1 spin-waits on a TCDM flag that hart 0 publishes only after a
  // long delay. The spin loop retires instructions every cycle, so the
  // progress watchdog must NOT fire even with a tight deadlock budget --
  // this is the paper kernels' barrier idiom.
  const Addr flag = memmap::kTcdmBase + 0x100;
  ProgramBuilder writer;
  writer.li(isa::kT2, 3000);
  writer.label("delay");
  writer.addi(isa::kT2, isa::kT2, -1);
  writer.bnez(isa::kT2, "delay");
  writer.la(isa::kT0, flag);
  writer.li(isa::kT1, 1);
  writer.sw(isa::kT1, isa::kT0, 0);
  writer.ecall();

  ProgramBuilder spinner;
  spinner.la(isa::kT0, flag);
  spinner.label("spin");
  spinner.lw(isa::kT1, isa::kT0, 0);
  spinner.beq(isa::kT1, isa::kZero, "spin");
  spinner.ecall();

  RunRequest req = RunRequest::for_programs(
      {writer.build(), spinner.build()}, "barrier-spin", EngineSel::kCycle);
  req.config.deadlock_cycles = 2000;  // < the writer's delay in cycles
  req.config.max_cycles = 200000;
  const RunReport r = api::run(req);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.failure.kind, FailureKind::kNone);
}

TEST(Watchdog, LongRetiringLoopOutlivesTightDeadlockBudget) {
  // A counted loop much longer than deadlock_cycles keeps retiring, so it
  // must complete: the watchdog watches progress, not wall length.
  ProgramBuilder b;
  b.li(isa::kT2, 20000);
  b.label("loop");
  b.addi(isa::kT2, isa::kT2, -1);
  b.bnez(isa::kT2, "loop");
  b.ecall();
  RunRequest req = RunRequest::for_program(b.build(), "long-loop",
                                           EngineSel::kCycle);
  req.config.deadlock_cycles = 2000;
  const RunReport r = api::run(req);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Watchdog, CycleBudgetClassifiedAsBudgetExceeded) {
  // An infinite self-loop trips max_cycles (not the deadlock watchdog: a
  // taken branch retires). The failure must be classified as a budget.
  ProgramBuilder b;
  b.label("forever");
  b.jal(isa::kZero, "forever");
  RunRequest req = RunRequest::for_program(b.build(), "spin-forever",
                                           EngineSel::kCycle);
  req.config.max_cycles = 5000;
  req.config.deadlock_cycles = 100000;  // keep the watchdog out of the way
  const RunReport r = api::run(req);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failure.kind, FailureKind::kBudgetExceeded) << r.error;
}

TEST(Watchdog, IssStepBudgetDerivedFromCycleBudget) {
  // The same spin on the ISS: the engine derives max_steps from max_cycles,
  // so an ISS-only run cannot hang either.
  ProgramBuilder b;
  b.label("forever");
  b.jal(isa::kZero, "forever");
  RunRequest req = RunRequest::for_program(b.build(), "spin-forever-iss",
                                           EngineSel::kIss);
  req.config.max_cycles = 5000;
  const RunReport r = api::run(req);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failure.kind, FailureKind::kBudgetExceeded) << r.error;
}

TEST(Watchdog, WallClockBudgetHaltsBothEngines) {
  // With an (absurdly small) wall budget, an infinite loop must come back
  // as a failed budget_exceeded report on either engine, never a hang.
  for (const EngineSel engine : {EngineSel::kCycle, EngineSel::kIss}) {
    SCOPED_TRACE(api::engine_name(engine));
    ProgramBuilder b;
    b.label("forever");
    b.jal(isa::kZero, "forever");
    RunRequest req = RunRequest::for_program(b.build(), "wall-budget", engine);
    req.config.max_cycles = ~u64{0};  // only the wall clock can stop it
    req.config.max_wall_ms = 1;
    req.config.deadlock_cycles = ~u64{0} >> 1;
    const RunReport r = api::run(req);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.failure.kind, FailureKind::kBudgetExceeded) << r.error;
  }
}

} // namespace
} // namespace sch
