// Chaining-contribution tests: CSR mask semantics, architectural FIFO file,
// timing-level chain unit protocol (valid bits, backpressure, handoff modes),
// cost model, plus a randomized property test against a std::deque model.
#include <gtest/gtest.h>

#include <deque>
#include <random>

#include "core/arch_chain.hpp"
#include "core/chain_config.hpp"
#include "core/chain_unit.hpp"
#include "core/cost_model.hpp"

namespace sch::chain {
namespace {

TEST(ChainMask, BitAccessors) {
  ChainMask m;
  EXPECT_FALSE(m.any());
  m.enable(3);
  EXPECT_TRUE(m.enabled(3));
  EXPECT_FALSE(m.enabled(4));
  EXPECT_EQ(m.value(), 8u); // the paper's Fig. 1c mask: li mask, 8
  m.disable(3);
  EXPECT_FALSE(m.any());
  m.set_value(0xFFFF'FFFF);
  for (u8 r = 0; r < 32; ++r) EXPECT_TRUE(m.enabled(r));
}

TEST(ArchChain, FifoOrder) {
  ArchChainFile f;
  f.set_mask(1u << 3);
  f.push(3, 10);
  f.push(3, 20);
  f.push(3, 30);
  EXPECT_EQ(f.pop(3), 10u);
  EXPECT_EQ(f.pop(3), 20u);
  EXPECT_EQ(f.pop(3), 30u);
  EXPECT_EQ(f.pop(3), std::nullopt); // underflow
}

TEST(ArchChain, EnableClearsStaleState) {
  ArchChainFile f;
  f.set_mask(1u << 5);
  f.push(5, 77);
  f.set_mask(0);        // disable: latches 77
  f.set_mask(1u << 5);  // re-enable: FIFO fresh
  EXPECT_TRUE(f.empty(5));
  EXPECT_EQ(f.pop(5), std::nullopt);
}

TEST(ArchChain, DisableLatchesOldestElement) {
  ArchChainFile f;
  f.set_mask(1u << 3);
  f.push(3, 111);
  f.push(3, 222);
  const auto effects = f.set_mask(0);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].reg, 3);
  ASSERT_TRUE(effects[0].latched_value.has_value());
  EXPECT_EQ(*effects[0].latched_value, 111u);
}

TEST(ArchChain, DisableEmptyFifoNoLatch) {
  ArchChainFile f;
  f.set_mask(1u << 3);
  const auto effects = f.set_mask(0);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_FALSE(effects[0].latched_value.has_value());
}

TEST(ArchChain, IndependentRegisters) {
  ArchChainFile f;
  f.set_mask((1u << 3) | (1u << 7));
  f.push(3, 1);
  f.push(7, 2);
  f.push(3, 3);
  EXPECT_EQ(f.pop(7), 2u);
  EXPECT_EQ(f.pop(3), 1u);
  EXPECT_EQ(f.pop(3), 3u);
}

TEST(ChainUnit, PopThenPushSameCycleAllowedByDefault) {
  ChainUnit u(/*strict_handoff=*/false);
  u.set_mask(1u << 3);
  u.begin_cycle();
  u.push(3, 42);
  u.begin_cycle();
  ASSERT_TRUE(u.can_pop(3));
  EXPECT_EQ(u.pop(3), 42u);
  // Same cycle: producer may hand off into the freed slot.
  EXPECT_TRUE(u.can_push(3));
  u.push(3, 43);
  u.begin_cycle();
  EXPECT_EQ(u.pop(3), 43u);
}

TEST(ChainUnit, StrictHandoffBlocksSameCyclePush) {
  ChainUnit u(/*strict_handoff=*/true);
  u.set_mask(1u << 3);
  u.begin_cycle();
  u.push(3, 42);
  u.begin_cycle();
  EXPECT_EQ(u.pop(3), 42u);
  EXPECT_FALSE(u.can_push(3)); // freed this cycle, but strict mode blocks
  u.begin_cycle();
  EXPECT_TRUE(u.can_push(3));  // next cycle the slot is usable
}

TEST(ChainUnit, BackpressureWhenOccupied) {
  ChainUnit u;
  u.set_mask(1u << 3);
  u.begin_cycle();
  u.push(3, 1);
  u.begin_cycle();
  EXPECT_FALSE(u.can_push(3)); // occupied, nothing popped this cycle
}

TEST(ChainUnit, EnableClearsValidBit) {
  ChainUnit u;
  u.set_mask(1u << 4);
  u.begin_cycle();
  u.push(4, 9);
  u.set_mask(0);        // disable: value 9 stays architectural
  EXPECT_EQ(u.value(4), 9u);
  u.set_mask(1u << 4);  // re-enable: stale value is not an element
  EXPECT_FALSE(u.can_pop(4));
}

TEST(ChainUnit, StatsCountPushesAndPops) {
  ChainUnit u;
  u.set_mask(1u << 0);
  for (int i = 0; i < 5; ++i) {
    u.begin_cycle();
    u.push(0, static_cast<u64>(i));
    u.begin_cycle();
    u.pop(0);
  }
  EXPECT_EQ(u.stats().pushes, 5u);
  EXPECT_EQ(u.stats().pops, 5u);
}

// Property: the arch chain file behaves exactly like a deque under a random
// push/pop interleaving per register.
TEST(ArchChainProperty, MatchesDequeModel) {
  std::mt19937 rng(12345);
  for (int trial = 0; trial < 50; ++trial) {
    ArchChainFile f;
    f.set_mask(0xFFFF'FFFF);
    std::array<std::deque<u64>, 32> model;
    for (int op = 0; op < 400; ++op) {
      const u8 reg = static_cast<u8>(rng() % 32);
      if (rng() % 2 == 0) {
        const u64 v = rng();
        f.push(reg, v);
        model[reg].push_back(v);
      } else if (!model[reg].empty()) {
        const u64 expect = model[reg].front();
        model[reg].pop_front();
        const auto got = f.pop(reg);
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(*got, expect);
      } else {
        ASSERT_EQ(f.pop(reg), std::nullopt);
      }
    }
  }
}

TEST(CostModel, UnderTwoPercentOverhead) {
  const CostBreakdown b = estimate_cost();
  // Paper, Section III: "<2% cell area increase".
  EXPECT_LT(b.overhead_fraction, 0.02);
  EXPECT_GT(b.overhead_fraction, 0.0);
  EXPECT_GT(b.total_extension_ge, 0.0);
  EXPECT_DOUBLE_EQ(b.total_extension_ge,
                   b.valid_bits_ge + b.csr_ge + b.control_ge);
}

TEST(CostModel, RegisterPressure) {
  // Fig. 1b uses 4 architectural registers (ft3..ft6) for the software FIFO;
  // chaining needs 1 (ft3), freeing 3.
  const RegisterPressure rp = register_pressure(4);
  EXPECT_EQ(rp.without_chaining, 4u);
  EXPECT_EQ(rp.with_chaining, 1u);
  EXPECT_EQ(rp.freed, 3u);
}

} // namespace
} // namespace sch::chain
