// Property-based suites: randomized programs executed on both engines with
// architectural-state comparison, randomized chain push/pop schedules checked
// against the deque model, randomized SSR gathers checked against host
// gathers, and assembler/disassembler round-trips over the mnemonic space.
#include <gtest/gtest.h>

#include <deque>
#include <random>
#include <sstream>

#include "asm/assembler.hpp"
#include "asm/builder.hpp"
#include "isa/disasm.hpp"
#include "iss/exec_semantics.hpp"
#include "iss/iss.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"
#include "ssr/ssr_config.hpp"

namespace sch {
namespace {

constexpr Addr kBuf = memmap::kTcdmBase;

/// Run `program` on both engines; expect clean halts and identical
/// architectural state + memory window.
void run_both_and_compare(const Program& program, u32 mem_window = 512) {
  Memory mem_iss;
  Iss iss(program, mem_iss);
  const HaltReason hi = iss.run();
  ASSERT_EQ(hi, HaltReason::kEcall) << "ISS: " << iss.error();

  Memory mem_sim;
  sim::Simulator simulator(program, mem_sim);
  const HaltReason hs = simulator.run();
  ASSERT_EQ(hs, HaltReason::kEcall) << "sim: " << simulator.error();

  const ArchState& a = iss.state();
  const ArchState b = simulator.arch_state();
  for (u8 r = 0; r < isa::kNumIntRegs; ++r) {
    ASSERT_EQ(a.x[r], b.x[r]) << "x" << static_cast<int>(r);
  }
  for (u8 r = 0; r < isa::kNumFpRegs; ++r) {
    ASSERT_EQ(a.f[r], b.f[r]) << "f" << static_cast<int>(r);
  }
  ASSERT_EQ(mem_iss.read_block(kBuf, mem_window), mem_sim.read_block(kBuf, mem_window));
}

// --- random integer programs -------------------------------------------------

class RandomIntPrograms : public ::testing::TestWithParam<u32> {};

TEST_P(RandomIntPrograms, EnginesAgree) {
  std::mt19937 rng(GetParam() * 7919 + 13);
  for (int trial = 0; trial < 8; ++trial) {
    ProgramBuilder b;
    b.data_zero(512);
    // Seed registers x5..x15 with random values.
    for (u8 r = 5; r <= 15; ++r) {
      b.li(r, static_cast<i64>(static_cast<i32>(rng())));
    }
    const isa::Mnemonic ops[] = {
        isa::Mnemonic::kAdd,  isa::Mnemonic::kSub,   isa::Mnemonic::kSll,
        isa::Mnemonic::kSlt,  isa::Mnemonic::kSltu,  isa::Mnemonic::kXor,
        isa::Mnemonic::kSrl,  isa::Mnemonic::kSra,   isa::Mnemonic::kOr,
        isa::Mnemonic::kAnd,  isa::Mnemonic::kMul,   isa::Mnemonic::kMulh,
        isa::Mnemonic::kMulhu, isa::Mnemonic::kDiv,  isa::Mnemonic::kDivu,
        isa::Mnemonic::kRem,  isa::Mnemonic::kRemu,  isa::Mnemonic::kMulhsu,
    };
    for (int i = 0; i < 60; ++i) {
      const auto mn = ops[rng() % std::size(ops)];
      const u8 rd = 5 + rng() % 11;
      const u8 rs1 = 5 + rng() % 11;
      const u8 rs2 = 5 + rng() % 11;
      b.emit(isa::make_r(mn, rd, rs1, rs2));
      if (rng() % 4 == 0) {
        b.addi(5 + rng() % 11, 5 + rng() % 11,
               static_cast<i32>(rng() % 4096) - 2048);
      }
    }
    // Dump every register to memory so the comparison covers all of them.
    b.la(isa::kA0, kBuf);
    for (u8 r = 5; r <= 15; ++r) b.sw(r, isa::kA0, 4 * (r - 5));
    b.ecall();
    run_both_and_compare(b.build());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIntPrograms, ::testing::Range(1u, 6u));

// --- random memory programs ---------------------------------------------------

class RandomMemPrograms : public ::testing::TestWithParam<u32> {};

TEST_P(RandomMemPrograms, EnginesAgree) {
  std::mt19937 rng(GetParam() * 104729 + 7);
  for (int trial = 0; trial < 6; ++trial) {
    ProgramBuilder b;
    b.data_zero(512);
    // Base/dump pointers live outside the randomized value-register range.
    b.la(isa::kS2, kBuf);
    for (u8 r = 5; r <= 12; ++r) {
      b.li(r, static_cast<i64>(static_cast<i32>(rng())));
    }
    for (int i = 0; i < 50; ++i) {
      const u8 reg = 5 + rng() % 8;
      const u32 kind = rng() % 6;
      const i32 off = static_cast<i32>((rng() % 110) * 4);
      switch (kind) {
        case 0: b.sw(reg, isa::kS2, off); break;
        case 1: b.emit(isa::make_s(isa::Mnemonic::kSh, isa::kS2, reg, off)); break;
        case 2: b.emit(isa::make_s(isa::Mnemonic::kSb, isa::kS2, reg, off)); break;
        case 3: b.lw(reg, isa::kS2, off); break;
        case 4: b.emit(isa::make_i(isa::Mnemonic::kLh, reg, isa::kS2, off)); break;
        default: b.emit(isa::make_i(isa::Mnemonic::kLbu, reg, isa::kS2, off)); break;
      }
    }
    b.la(isa::kS3, kBuf + 480);
    for (u8 r = 5; r <= 12; ++r) b.sw(r, isa::kS3, 4 * (r - 5));
    b.ecall();
    run_both_and_compare(b.build());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMemPrograms, ::testing::Range(1u, 5u));

// --- random FP programs --------------------------------------------------------

class RandomFpPrograms : public ::testing::TestWithParam<u32> {};

TEST_P(RandomFpPrograms, EnginesAgreeBitExact) {
  std::mt19937 rng(GetParam() * 31337 + 99);
  for (int trial = 0; trial < 6; ++trial) {
    ProgramBuilder b;
    // Seed FP registers f8..f19 with assorted values (incl. specials).
    std::vector<double> seeds;
    for (int i = 0; i < 12; ++i) {
      switch (rng() % 8) {
        case 0: seeds.push_back(0.0); break;
        case 1: seeds.push_back(-0.0); break;
        case 2: seeds.push_back(1e300); break;
        case 3: seeds.push_back(-3.5e-2); break;
        default:
          seeds.push_back(static_cast<double>(static_cast<i32>(rng())) / 64.0);
      }
    }
    const Addr seed_base = b.data_f64(seeds);
    b.data_zero(256);
    b.la(isa::kA0, seed_base);
    for (int i = 0; i < 12; ++i) b.fld(static_cast<u8>(8 + i), isa::kA0, 8 * i);

    const isa::Mnemonic ops[] = {
        isa::Mnemonic::kFaddD,  isa::Mnemonic::kFsubD,  isa::Mnemonic::kFmulD,
        isa::Mnemonic::kFminD,  isa::Mnemonic::kFmaxD,  isa::Mnemonic::kFsgnjD,
        isa::Mnemonic::kFsgnjnD, isa::Mnemonic::kFsgnjxD, isa::Mnemonic::kFmaddD,
        isa::Mnemonic::kFmsubD, isa::Mnemonic::kFnmaddD, isa::Mnemonic::kFnmsubD,
        isa::Mnemonic::kFdivD,
    };
    for (int i = 0; i < 40; ++i) {
      const auto mn = ops[rng() % std::size(ops)];
      const u8 rd = 8 + rng() % 12;
      const u8 rs1 = 8 + rng() % 12;
      const u8 rs2 = 8 + rng() % 12;
      const u8 rs3 = 8 + rng() % 12;
      if (isa::info(mn).fmt == isa::Format::kR4) {
        b.emit(isa::make_r4(mn, rd, rs1, rs2, rs3));
      } else {
        b.emit(isa::make_r(mn, rd, rs1, rs2));
      }
      if (rng() % 5 == 0) {
        // Sprinkle compares/classifies into the integer domain.
        const auto cmp = rng() % 2 == 0 ? isa::Mnemonic::kFltD : isa::Mnemonic::kFeqD;
        b.emit(isa::make_r(cmp, 5 + rng() % 8, rs1, rs2));
      }
    }
    b.la(isa::kA1, seed_base + 12 * 8);
    for (int i = 0; i < 12; ++i) b.fsd(static_cast<u8>(8 + i), isa::kA1, 8 * i);
    b.ecall();
    run_both_and_compare(b.build());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFpPrograms, ::testing::Range(1u, 5u));

// --- random chain schedules -----------------------------------------------------

class RandomChainSchedules : public ::testing::TestWithParam<u32> {};

TEST_P(RandomChainSchedules, FifoOrderPreservedAcrossEngines) {
  std::mt19937 rng(GetParam() * 263 + 5);
  for (int trial = 0; trial < 8; ++trial) {
    ProgramBuilder b;
    // Pool of push values, preloaded into f20..f27 so pushes issue
    // back-to-back (1/cycle) like the paper's kernels.
    std::vector<double> pool(8);
    for (auto& v : pool) v = static_cast<double>(1 + rng() % 4096) * 0.125;
    const Addr pool_base = b.data_f64(pool);
    const Addr out_base = b.data_zero(1024);
    b.la(isa::kA0, pool_base);
    for (u8 i = 0; i < 8; ++i) b.fld(static_cast<u8>(20 + i), isa::kA0, 8 * i);
    b.la(isa::kS0, out_base);
    b.li(isa::kT0, 8); // chain ft3
    b.csrs(isa::csr::kChainMask, isa::kT0);

    // A sustainable schedule respects the paper's production/consumption
    // balance: runs of r back-to-back pushes (r <= FIFO capacity 4), each
    // drained by r pops before the next run -- the Fig. 1c block structure.
    // (Pushing again after a partial drain, or spacing pushes apart with
    // integer work, strands a producer writeback behind a consumer that
    // cannot issue past it; see SimChain.OverflowBeyondCapacityDeadlocks.)
    u32 pushed = 0, popped = 0;
    i32 store_off = 0;
    std::deque<double> model;
    for (int block = 0; block < 20; ++block) {
      const u32 r = 1 + rng() % 4;
      for (u32 i = 0; i < r; ++i) {
        const u8 src = static_cast<u8>(20 + rng() % 8);
        b.fmv_d(isa::kFt3, src); // push
        model.push_back(pool[src - 20]);
        ++pushed;
      }
      for (u32 i = 0; i < r; ++i) {
        b.fsd(isa::kFt3, isa::kS0, store_off); // pop
        store_off += 8;
        ++popped;
      }
    }
    b.csrw(isa::csr::kChainMask, 0);
    b.ecall();
    ASSERT_EQ(pushed, popped);

    const Program p = b.build();
    Memory mem_iss, mem_sim;
    Iss iss(p, mem_iss);
    ASSERT_EQ(iss.run(), HaltReason::kEcall) << iss.error();
    sim::Simulator simulator(p, mem_sim);
    ASSERT_EQ(simulator.run(), HaltReason::kEcall) << simulator.error();

    // Both engines must emit the pushes in exact FIFO order.
    for (u32 i = 0; i < pushed; ++i) {
      ASSERT_EQ(mem_iss.load_f64(out_base + 8 * i), model[i]) << "iss elem " << i;
      ASSERT_EQ(mem_sim.load_f64(out_base + 8 * i), model[i]) << "sim elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainSchedules, ::testing::Range(1u, 6u));

// --- random SSR gathers -----------------------------------------------------------

class RandomSsrGathers : public ::testing::TestWithParam<u32> {};

TEST_P(RandomSsrGathers, IndirectStreamMatchesHostGather) {
  std::mt19937 rng(GetParam() * 1699 + 3);
  for (int trial = 0; trial < 5; ++trial) {
    const u32 n_data = 64;
    const u32 n_idx = 16 + rng() % 17; // 16..32 gathers
    ProgramBuilder b;
    std::vector<double> data(n_data);
    for (auto& v : data) v = static_cast<double>(static_cast<i32>(rng())) / 16.0;
    std::vector<u16> idx(n_idx);
    for (auto& v : idx) v = static_cast<u16>(rng() % n_data);

    const Addr data_base = b.data_f64(data);
    const Addr idx_base = b.data_u16(idx);
    b.data_align(8);
    const Addr out_base = b.data_zero(n_idx * 8);

    // SSR0: indirect gather over the index array; SSR2: compacted writeback.
    b.li(isa::kT0, static_cast<i64>(n_idx - 1));
    b.scfgw(isa::kT0, ssr::cfg_index(0, ssr::CfgReg::kBound0));
    b.li(isa::kT0, 2);
    b.scfgw(isa::kT0, ssr::cfg_index(0, ssr::CfgReg::kStride0));
    b.li(isa::kT0, (1 << 16) | (3 << 4) | 1);
    b.scfgw(isa::kT0, ssr::cfg_index(0, ssr::CfgReg::kIdxCfg));
    b.li(isa::kT1, static_cast<i64>(data_base));
    b.scfgw(isa::kT1, ssr::cfg_index(0, ssr::CfgReg::kIdxBase));
    b.li(isa::kT1, static_cast<i64>(idx_base));
    b.scfgw(isa::kT1, ssr::cfg_index(0, ssr::CfgReg::kRptr0));

    b.li(isa::kT0, static_cast<i64>(n_idx - 1));
    b.scfgw(isa::kT0, ssr::cfg_index(2, ssr::CfgReg::kBound0));
    b.li(isa::kT0, 8);
    b.scfgw(isa::kT0, ssr::cfg_index(2, ssr::CfgReg::kStride0));
    b.li(isa::kT1, static_cast<i64>(out_base));
    b.scfgw(isa::kT1, ssr::cfg_index(2, ssr::CfgReg::kWptr0));

    b.csrwi(isa::csr::kSsrEnable, 1);
    b.li(isa::kT2, static_cast<i64>(n_idx - 1));
    b.frep_o(isa::kT2, 1);
    b.fmv_d(isa::kFt2, isa::kFt0);
    b.csrwi(isa::csr::kSsrEnable, 0);
    b.ecall();

    const Program p = b.build();
    Memory mem_iss, mem_sim;
    Iss iss(p, mem_iss);
    ASSERT_EQ(iss.run(), HaltReason::kEcall) << iss.error();
    sim::Simulator simulator(p, mem_sim);
    ASSERT_EQ(simulator.run(), HaltReason::kEcall) << simulator.error();
    for (u32 i = 0; i < n_idx; ++i) {
      ASSERT_EQ(mem_iss.load_f64(out_base + 8 * i), data[idx[i]]) << i;
      ASSERT_EQ(mem_sim.load_f64(out_base + 8 * i), data[idx[i]]) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSsrGathers, ::testing::Range(1u, 5u));

// --- disassemble -> assemble round trip ----------------------------------------------

class DisasmRoundTrip : public ::testing::TestWithParam<u32> {};

TEST_P(DisasmRoundTrip, TextRoundTripPreservesEncoding) {
  std::mt19937 rng(GetParam() * 53 + 1);
  for (u16 m = 1; m < static_cast<u16>(isa::Mnemonic::kCount); ++m) {
    const auto mn = static_cast<isa::Mnemonic>(m);
    const isa::MnemonicInfo& mi = isa::info(mn);
    isa::Instr in;
    switch (mi.fmt) {
      case isa::Format::kR:
        in = isa::make_r(mn, rng() % 32, rng() % 32,
                         mi.rs2 == isa::RegClass::kNone ? 0 : rng() % 32);
        break;
      case isa::Format::kR4:
        in = isa::make_r4(mn, rng() % 32, rng() % 32, rng() % 32, rng() % 32);
        break;
      case isa::Format::kI: {
        i32 imm = static_cast<i32>(rng() % 4096) - 2048;
        if (mn == isa::Mnemonic::kSlli || mn == isa::Mnemonic::kSrli ||
            mn == isa::Mnemonic::kSrai) {
          imm &= 31;
        }
        if (mi.exec == isa::ExecClass::kFrep || mi.exec == isa::ExecClass::kScfg) {
          imm &= 2047;
        }
        u8 rd = rng() % 32, rs1 = rng() % 32;
        if (mi.exec == isa::ExecClass::kFrep || mn == isa::Mnemonic::kScfgw) rd = 0;
        if (mn == isa::Mnemonic::kScfgr) rs1 = 0;
        // Xdma I-forms hard-wire unused register/immediate fields to zero.
        if (mn == isa::Mnemonic::kDmSrc || mn == isa::Mnemonic::kDmDst) {
          rd = 0;
          imm = 0;
        }
        if (mn == isa::Mnemonic::kDmCpy) imm = 0;
        if (mn == isa::Mnemonic::kDmStat) {
          rs1 = 0;
          imm &= 2047;
        }
        in = isa::make_i(mn, rd, rs1, imm);
        break;
      }
      case isa::Format::kS:
        in = isa::make_s(mn, rng() % 32, rng() % 32,
                         static_cast<i32>(rng() % 4096) - 2048);
        break;
      case isa::Format::kB:
        in = isa::make_b(mn, rng() % 32, rng() % 32,
                         (static_cast<i32>(rng() % 2048) - 1024) * 2);
        break;
      case isa::Format::kU:
        in = isa::make_u(mn, rng() % 32, static_cast<i32>(rng() % 0x100000));
        break;
      case isa::Format::kJ:
        in = isa::make_j(mn, rng() % 32,
                         (static_cast<i32>(rng() % 16384) - 8192) * 2);
        break;
      case isa::Format::kCsr:
        in = isa::make_csr(mn, rng() % 32, rng() % 32, 0x7C3);
        break;
      case isa::Format::kCsrI:
        in = isa::make_csr(mn, rng() % 32, rng() % 32, 0x7C0);
        break;
      case isa::Format::kNone: {
        in.mn = mn;
        in.raw = isa::encode(in);
        break;
      }
    }
    const std::string text = isa::disassemble(in);
    auto res = assembler::assemble(text + "\n");
    ASSERT_TRUE(res.ok()) << text << ": " << res.status().message();
    ASSERT_EQ(res.value().words.size(), 1u) << text;
    EXPECT_EQ(res.value().words[0], in.raw) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisasmRoundTrip, ::testing::Range(1u, 4u));

} // namespace
} // namespace sch
