// SSR tests: affine address generation (Snitch relative-stride semantics),
// element repetition, indirect translation, functional streams against
// reference enumerations (property-style sweeps), config decode, and the
// cycle-level streamer's FIFO/latency behaviour.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "mem/memory.hpp"
#include "mem/tcdm.hpp"
#include "ssr/addr_gen.hpp"
#include "ssr/functional_stream.hpp"
#include "ssr/ssr_file.hpp"
#include "ssr/streamer.hpp"

namespace sch::ssr {
namespace {

constexpr Addr kBase = memmap::kTcdmBase;

double exec_bits_to_f64(u64 bits) {
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::vector<Addr> drain(AddrGen& g) {
  std::vector<Addr> out;
  while (!g.done()) {
    out.push_back(g.peek());
    g.advance();
  }
  return out;
}

/// Reference enumeration with relative-stride semantics.
std::vector<Addr> reference_affine(Addr base, u32 dims,
                                   const std::array<u32, kMaxDims>& bounds,
                                   const std::array<i32, kMaxDims>& strides,
                                   u32 repeat) {
  std::vector<Addr> out;
  std::array<u32, kMaxDims> idx{};
  Addr ptr = base;
  while (true) {
    for (u32 r = 0; r <= repeat; ++r) out.push_back(ptr);
    u32 d = 0;
    for (; d < dims; ++d) {
      if (idx[d] < bounds[d]) {
        ++idx[d];
        ptr = static_cast<Addr>(static_cast<i64>(ptr) + strides[d]);
        break;
      }
      idx[d] = 0;
    }
    if (d == dims) break;
  }
  return out;
}

TEST(AddrGen, Linear1D) {
  AddrGen g;
  g.arm(kBase, 1, {3, 0, 0, 0}, {8, 0, 0, 0}, 0);
  EXPECT_EQ(g.total(), 4u);
  EXPECT_EQ(drain(g), (std::vector<Addr>{kBase, kBase + 8, kBase + 16, kBase + 24}));
}

TEST(AddrGen, RelativeStride2D) {
  // 2x3 row-major matrix of f64 with a row gap: inner bound 2 (3 elems,
  // stride 8), outer stride jumps from row end to next row start (+16).
  AddrGen g;
  g.arm(kBase, 2, {2, 1, 0, 0}, {8, 16, 0, 0}, 0);
  EXPECT_EQ(drain(g),
            (std::vector<Addr>{kBase, kBase + 8, kBase + 16, kBase + 32,
                               kBase + 40, kBase + 48}));
}

TEST(AddrGen, NegativeStride) {
  AddrGen g;
  g.arm(kBase + 24, 1, {3, 0, 0, 0}, {-8, 0, 0, 0}, 0);
  EXPECT_EQ(drain(g),
            (std::vector<Addr>{kBase + 24, kBase + 16, kBase + 8, kBase}));
}

TEST(AddrGen, Repetition) {
  AddrGen g;
  g.arm(kBase, 1, {1, 0, 0, 0}, {8, 0, 0, 0}, 2);
  EXPECT_EQ(g.total(), 6u);
  EXPECT_EQ(drain(g), (std::vector<Addr>{kBase, kBase, kBase, kBase + 8,
                                         kBase + 8, kBase + 8}));
}

TEST(AddrGen, InnerContiguityProbe) {
  AddrGen g;
  g.arm(kBase, 2, {3, 1, 0, 0}, {2, 100, 0, 0}, 0);
  EXPECT_TRUE(g.inner_contiguous(2));
  EXPECT_FALSE(g.inner_contiguous(8));
  EXPECT_EQ(g.inner_remaining(), 4u);
  g.advance();
  EXPECT_EQ(g.inner_remaining(), 3u);
}

// Property sweep: random affine configs match the reference enumeration.
class AffineProperty : public ::testing::TestWithParam<u32> {};

TEST_P(AffineProperty, MatchesReference) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const u32 dims = 1 + rng() % kMaxDims;
    std::array<u32, kMaxDims> bounds{};
    std::array<i32, kMaxDims> strides{};
    for (u32 d = 0; d < dims; ++d) {
      bounds[d] = rng() % 4;
      strides[d] = static_cast<i32>(rng() % 64) - 32;
    }
    const u32 repeat = rng() % 3;
    const Addr base = kBase + 4096 + (rng() % 256) * 8;

    AddrGen g;
    g.arm(base, dims, bounds, strides, repeat);
    const auto expect = reference_affine(base, dims, bounds, strides, repeat);
    EXPECT_EQ(g.total(), expect.size());
    EXPECT_EQ(drain(g), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffineProperty, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(CfgIndex, EncodingRoundTrip) {
  for (u32 ssr = 0; ssr < kNumSsrs; ++ssr) {
    for (u32 reg = 0; reg < kNumCfgRegs; ++reg) {
      const i32 idx = cfg_index(ssr, static_cast<CfgReg>(reg));
      EXPECT_EQ(cfg_ssr_of(idx), ssr);
      EXPECT_EQ(cfg_reg_of(idx), reg);
    }
  }
}

TEST(CfgWrite, ArmEventsAndPlainWrites) {
  std::array<SsrRawConfig, kNumSsrs> cfgs{};
  auto r1 = apply_cfg_write(cfgs, cfg_index(1, CfgReg::kBound0), 26);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.value().has_value());
  EXPECT_EQ(cfgs[1].bounds[0], 26u);

  const auto rptr1 = static_cast<CfgReg>(static_cast<u32>(CfgReg::kRptr0) + 1);
  auto r2 = apply_cfg_write(cfgs, cfg_index(1, rptr1), kBase);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r2.value().has_value());
  EXPECT_EQ(r2.value()->ssr, 1u);
  EXPECT_EQ(r2.value()->dims, 2u);
  EXPECT_EQ(r2.value()->dir, StreamDir::kRead);

  auto r3 = apply_cfg_write(cfgs, cfg_index(2, CfgReg::kWptr0), kBase + 64);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.value()->dir, StreamDir::kWrite);
  EXPECT_EQ(r3.value()->dims, 1u);

  EXPECT_FALSE(apply_cfg_write(cfgs, 4000, 0).ok());
  EXPECT_FALSE(apply_cfg_write(cfgs, cfg_index(0, CfgReg::kStatus), 1).ok());
}

TEST(FunctionalStream, AffineRead) {
  Memory mem;
  for (u32 i = 0; i < 8; ++i) mem.store_f64(kBase + 8 * i, 1.5 * i);
  SsrRawConfig cfg;
  cfg.bounds[0] = 7;
  cfg.strides[0] = 8;
  FunctionalStream s;
  s.arm(cfg, kBase, 1, StreamDir::kRead);
  EXPECT_EQ(s.total(), 8u);
  for (u32 i = 0; i < 8; ++i) {
    auto v = s.read_next(mem);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(exec_bits_to_f64(*v), 1.5 * i);
  }
  EXPECT_TRUE(s.done());
  EXPECT_EQ(s.read_next(mem), std::nullopt);
}

TEST(FunctionalStream, RepetitionReplaysWithoutRefetch) {
  Memory mem;
  mem.store_f64(kBase, 7.0);
  mem.store_f64(kBase + 8, 9.0);
  SsrRawConfig cfg;
  cfg.bounds[0] = 1;
  cfg.strides[0] = 8;
  cfg.repeat = 3; // each element delivered 4x
  FunctionalStream s;
  s.arm(cfg, kBase, 1, StreamDir::kRead);
  EXPECT_EQ(s.total(), 8u);
  std::vector<double> got;
  while (auto v = s.read_next(mem)) got.push_back(exec_bits_to_f64(*v));
  EXPECT_EQ(got, (std::vector<double>{7, 7, 7, 7, 9, 9, 9, 9}));
}

TEST(FunctionalStream, AffineWrite) {
  Memory mem;
  SsrRawConfig cfg;
  cfg.bounds[0] = 3;
  cfg.strides[0] = 16; // strided scatter
  FunctionalStream s;
  s.arm(cfg, kBase, 1, StreamDir::kWrite);
  for (u32 i = 0; i < 4; ++i) {
    u64 bits;
    const double v = 2.0 + i;
    std::memcpy(&bits, &v, 8);
    EXPECT_TRUE(s.write_next(mem, bits));
  }
  EXPECT_TRUE(s.done());
  EXPECT_FALSE(s.write_next(mem, 0));
  for (u32 i = 0; i < 4; ++i) EXPECT_EQ(mem.load_f64(kBase + 16 * i), 2.0 + i);
}

TEST(FunctionalStream, IndirectGather) {
  Memory mem;
  // Data window: 16 doubles; index array: u16 offsets in element units.
  for (u32 i = 0; i < 16; ++i) mem.store_f64(kBase + 8 * i, 100.0 + i);
  const Addr idx_addr = kBase + 1024;
  const std::vector<u16> idx = {0, 3, 3, 15, 7};
  for (u32 i = 0; i < idx.size(); ++i) mem.store(idx_addr + 2 * i, idx[i], 2);

  SsrRawConfig cfg;
  cfg.bounds[0] = 4;    // 5 indices
  cfg.strides[0] = 2;   // u16 index array
  cfg.idx_cfg = (1u << 16) | (3u << 4) | 1u; // enable, shift=3, idx size=2B
  cfg.idx_base = kBase;
  FunctionalStream s;
  s.arm(cfg, idx_addr, 1, StreamDir::kRead);
  std::vector<double> got;
  while (auto v = s.read_next(mem)) got.push_back(exec_bits_to_f64(*v));
  EXPECT_EQ(got, (std::vector<double>{100, 103, 103, 115, 107}));
}

TEST(FunctionalStream, IndirectScatter) {
  Memory mem;
  const Addr idx_addr = kBase + 512;
  const std::vector<u16> idx = {4, 0, 2};
  for (u32 i = 0; i < idx.size(); ++i) mem.store(idx_addr + 2 * i, idx[i], 2);
  SsrRawConfig cfg;
  cfg.bounds[0] = 2;
  cfg.strides[0] = 2;
  cfg.idx_cfg = (1u << 16) | (3u << 4) | 1u;
  cfg.idx_base = kBase;
  FunctionalStream s;
  s.arm(cfg, idx_addr, 1, StreamDir::kWrite);
  for (u32 i = 0; i < 3; ++i) {
    const double v = 50.0 + i;
    u64 bits;
    std::memcpy(&bits, &v, 8);
    ASSERT_TRUE(s.write_next(mem, bits));
  }
  EXPECT_EQ(mem.load_f64(kBase + 8 * 4), 50.0);
  EXPECT_EQ(mem.load_f64(kBase + 8 * 0), 51.0);
  EXPECT_EQ(mem.load_f64(kBase + 8 * 2), 52.0);
}

TEST(FunctionalSsrFile, MapsOnlyWhenEnabled) {
  Memory mem;
  mem.store_f64(kBase, 42.0);
  FunctionalSsrFile f;
  ASSERT_TRUE(f.cfg_write(cfg_index(0, CfgReg::kBound0), 0).is_ok());
  ASSERT_TRUE(f.cfg_write(cfg_index(0, CfgReg::kStride0), 8).is_ok());
  ASSERT_TRUE(f.cfg_write(cfg_index(0, CfgReg::kRptr0), kBase).is_ok());
  EXPECT_FALSE(f.maps(0)); // not yet enabled
  f.set_enabled(true);
  EXPECT_TRUE(f.maps(0));
  EXPECT_FALSE(f.maps(3)); // ft3 is never stream-mapped
  auto v = f.read(0, mem);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(exec_bits_to_f64(*v), 42.0);
  EXPECT_EQ(f.read(0, mem), std::nullopt); // exhausted
}

// --- cycle-level streamer -------------------------------------------------

TEST(Streamer, PrefetchLatencyOneCycle) {
  Memory mem;
  Tcdm tcdm;
  for (u32 i = 0; i < 4; ++i) mem.store_f64(kBase + 8 * i, 10.0 + i);
  SsrRawConfig cfg;
  cfg.bounds[0] = 3;
  cfg.strides[0] = 8;
  Streamer s;
  s.arm(cfg, kBase, 1, StreamDir::kRead);

  Cycle now = 1;
  s.begin_cycle(now);
  EXPECT_FALSE(s.can_pop());
  tcdm.begin_cycle();
  s.tick_fetch(now, tcdm, mem, TcdmPortId::kSsr0); // fetch granted at cycle 1
  EXPECT_FALSE(s.can_pop()); // data lands next cycle

  ++now;
  s.begin_cycle(now);
  EXPECT_TRUE(s.can_pop());
  EXPECT_EQ(exec_bits_to_f64(s.pop()), 10.0);
}

TEST(Streamer, FifoFillsToDepthAndStops) {
  Memory mem;
  Tcdm tcdm;
  for (u32 i = 0; i < 32; ++i) mem.store_f64(kBase + 8 * i, i);
  SsrRawConfig cfg;
  cfg.bounds[0] = 31;
  cfg.strides[0] = 8;
  Streamer s(StreamerConfig{.data_fifo_depth = 4});
  s.arm(cfg, kBase, 1, StreamDir::kRead);
  for (Cycle now = 1; now <= 10; ++now) {
    s.begin_cycle(now);
    tcdm.begin_cycle();
    s.tick_fetch(now, tcdm, mem, TcdmPortId::kSsr0);
  }
  // Only 4 fetches should have been granted (FIFO depth).
  EXPECT_EQ(s.stats().data_reads, 4u);
}

TEST(Streamer, WriteDrainsInOrder) {
  Memory mem;
  Tcdm tcdm;
  SsrRawConfig cfg;
  cfg.bounds[0] = 2;
  cfg.strides[0] = 8;
  Streamer s;
  s.arm(cfg, kBase, 1, StreamDir::kWrite);
  for (u32 i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.can_push());
    const double v = 5.0 + i;
    u64 bits;
    std::memcpy(&bits, &v, 8);
    s.push(bits);
  }
  Cycle now = 1;
  while (!s.idle() && now < 20) {
    s.begin_cycle(now);
    tcdm.begin_cycle();
    s.tick_fetch(now, tcdm, mem, TcdmPortId::kSsr2);
    ++now;
  }
  EXPECT_TRUE(s.idle());
  for (u32 i = 0; i < 3; ++i) EXPECT_EQ(mem.load_f64(kBase + 8 * i), 5.0 + i);
}

TEST(Streamer, WriteFifoBackpressure) {
  SsrRawConfig cfg;
  cfg.bounds[0] = 31;
  cfg.strides[0] = 8;
  Streamer s(StreamerConfig{.write_fifo_depth = 2});
  s.arm(cfg, kBase, 1, StreamDir::kWrite);
  s.push(1);
  s.push(2);
  EXPECT_FALSE(s.can_push());
}

TEST(Streamer, IndirectPackedIndexFetch) {
  Memory mem;
  Tcdm tcdm;
  for (u32 i = 0; i < 32; ++i) mem.store_f64(kBase + 8 * i, 100.0 + i);
  const Addr idx_addr = kBase + 2048; // 8B aligned
  const std::vector<u16> idx = {3, 1, 4, 1, 5, 9, 2, 6};
  for (u32 i = 0; i < idx.size(); ++i) mem.store(idx_addr + 2 * i, idx[i], 2);

  SsrRawConfig cfg;
  cfg.bounds[0] = 7;
  cfg.strides[0] = 2;
  cfg.idx_cfg = (1u << 16) | (3u << 4) | 1u;
  cfg.idx_base = kBase;
  Streamer s;
  s.arm(cfg, idx_addr, 1, StreamDir::kRead);

  std::vector<double> got;
  for (Cycle now = 1; now < 40 && got.size() < idx.size(); ++now) {
    s.begin_cycle(now);
    tcdm.begin_cycle();
    while (s.can_pop()) got.push_back(exec_bits_to_f64(s.pop()));
    s.tick_fetch(now, tcdm, mem, TcdmPortId::kSsr0);
  }
  ASSERT_EQ(got.size(), idx.size());
  for (u32 i = 0; i < idx.size(); ++i) EXPECT_EQ(got[i], 100.0 + idx[i]);
  // 8 u16 indices span two 8-byte words (4 per word): two index fetches.
  EXPECT_EQ(s.stats().idx_reads, 2u);
  EXPECT_EQ(s.stats().data_reads, 8u);
}

TEST(Streamer, ConflictDelaysFetch) {
  Memory mem;
  Tcdm tcdm;
  SsrRawConfig cfg;
  cfg.bounds[0] = 0;
  cfg.strides[0] = 8;
  Streamer s;
  s.arm(cfg, kBase, 1, StreamDir::kRead);
  Cycle now = 1;
  s.begin_cycle(now);
  tcdm.begin_cycle();
  // Core occupies bank 0 first.
  ASSERT_TRUE(tcdm.request(TcdmPortId::kCoreLsu, kBase, false));
  s.tick_fetch(now, tcdm, mem, TcdmPortId::kSsr0);
  EXPECT_EQ(s.stats().conflict_retries, 1u);
  EXPECT_EQ(s.stats().data_reads, 0u);
  ++now;
  s.begin_cycle(now);
  tcdm.begin_cycle();
  s.tick_fetch(now, tcdm, mem, TcdmPortId::kSsr0);
  EXPECT_EQ(s.stats().data_reads, 1u);
}

} // namespace
} // namespace sch::ssr
