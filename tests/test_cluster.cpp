// Cluster coverage: TCDM arbitration with more than one core's worth of
// requesters (grant order, cross-core round-robin fairness, conflict
// accounting, the out-of-range guard and the per-bank histogram), the
// mhartid/mnumharts CSRs, the sense-reversing barrier, per-core program
// images, multi-core determinism across repeated runs and host thread
// counts, and the parallelism smoke (2-core chained_par beats 1 core while
// reporting strictly more TCDM conflicts).
#include <gtest/gtest.h>

#include <cstring>

#include "api/engine.hpp"
#include "asm/assembler.hpp"
#include "asm/builder.hpp"
#include "isa/csr.hpp"
#include "isa/reg.hpp"
#include "iss/iss.hpp"
#include "kernels/axpy.hpp"
#include "kernels/barrier.hpp"
#include "mem/memory.hpp"
#include "mem/tcdm.hpp"
#include "sim/cluster.hpp"
#include "ssr/streamer.hpp"

namespace sch {
namespace {

constexpr Addr kBase = memmap::kTcdmBase;

// --- TCDM arbitration with dynamic requesters -------------------------------

TEST(ClusterTcdm, MoreThanFourRequestersAtOneBank) {
  // Two cores' worth of ports (8 requesters), all attacking bank 0: the
  // first request wins, every later one conflicts, and the accounting is
  // per requester.
  Tcdm t({}, 2 * kTcdmPortsPerCore);
  ASSERT_EQ(t.num_requesters(), 8u);
  t.begin_cycle();
  EXPECT_TRUE(t.request(0u, kBase, false));
  for (u32 req = 1; req < 8; ++req) {
    EXPECT_FALSE(t.request(req, kBase, false)) << "requester " << req;
  }
  EXPECT_EQ(t.stats().conflicts, 7u);
  EXPECT_EQ(t.stats().grants_per_port[0], 1u);
  for (u32 req = 1; req < 8; ++req) {
    EXPECT_EQ(t.stats().grants_per_port[req], 0u);
    EXPECT_EQ(t.stats().conflicts_per_port[req], 1u);
  }
  // Distinct banks from distinct cores still proceed in parallel.
  t.begin_cycle();
  for (u32 req = 0; req < 8; ++req) {
    EXPECT_TRUE(t.request(req, kBase + 8 * req, req % 2 == 0));
  }
}

TEST(ClusterTcdm, RequesterIdMapping) {
  EXPECT_EQ(Tcdm::requester_id(0, TcdmPortId::kCoreLsu), 0u);
  EXPECT_EQ(Tcdm::requester_id(0, TcdmPortId::kSsr2), 3u);
  EXPECT_EQ(Tcdm::requester_id(3, TcdmPortId::kCoreLsu), 12u);
  EXPECT_EQ(Tcdm::requester_id(3, TcdmPortId::kSsr1), 14u);
}

TEST(ClusterTcdm, CrossCoreRoundRobinIsFair) {
  // The cluster rotates the core service order each cycle; emulate two
  // cores' LSU ports contending for bank 0 under that protocol and verify
  // the grant alternates (5/5 over 10 cycles), not 10/0.
  Tcdm t({}, 2 * kTcdmPortsPerCore);
  const u32 lsu0 = Tcdm::requester_id(0, TcdmPortId::kCoreLsu);
  const u32 lsu1 = Tcdm::requester_id(1, TcdmPortId::kCoreLsu);
  for (Cycle cycle = 1; cycle <= 10; ++cycle) {
    t.begin_cycle();
    const u32 first = cycle % 2;
    t.request(first == 0 ? lsu0 : lsu1, kBase, false);
    t.request(first == 0 ? lsu1 : lsu0, kBase, false);
  }
  EXPECT_EQ(t.stats().grants_per_port[lsu0], 5u);
  EXPECT_EQ(t.stats().grants_per_port[lsu1], 5u);
  EXPECT_EQ(t.stats().conflicts_per_port[lsu0], 5u);
  EXPECT_EQ(t.stats().conflicts_per_port[lsu1], 5u);
}

TEST(ClusterTcdm, PerBankConflictHistogramAndTopBanks) {
  Tcdm t({}, 8);
  t.begin_cycle();
  // Bank 1: one grant + three conflicts. Bank 2: one grant + one conflict.
  ASSERT_TRUE(t.request(0u, kBase + 8, false));
  for (u32 req = 1; req <= 3; ++req) EXPECT_FALSE(t.request(req, kBase + 8, false));
  ASSERT_TRUE(t.request(4u, kBase + 16, false));
  EXPECT_FALSE(t.request(5u, kBase + 16, false));
  EXPECT_EQ(t.stats().conflicts_per_bank[1], 3u);
  EXPECT_EQ(t.stats().conflicts_per_bank[2], 1u);
  EXPECT_EQ(t.stats().conflicts_per_bank[0], 0u);
  const auto top = t.top_conflict_banks(8);
  ASSERT_EQ(top.size(), 2u); // zero-conflict banks omitted
  EXPECT_EQ(top[0], (std::pair<u32, u64>{1, 3}));
  EXPECT_EQ(top[1], (std::pair<u32, u64>{2, 1}));
  EXPECT_EQ(t.top_conflict_banks(1).size(), 1u);
}

TEST(ClusterTcdm, StreamerBypassesArbitrationOutsideTheWindow) {
  // SSR stream pointers are user-settable and may leave the TCDM window
  // (e.g. main memory). Such fetches must proceed un-arbitrated — counted
  // in out_of_range, occupying no bank, aborting nothing.
  Memory mem;
  Tcdm tcdm;
  mem.store_f64(memmap::kMainBase, 42.5);
  ssr::SsrRawConfig cfg;
  cfg.bounds[0] = 0;
  cfg.strides[0] = 8;
  ssr::Streamer s;
  s.arm(cfg, memmap::kMainBase, 1, ssr::StreamDir::kRead);
  Cycle now = 1;
  s.begin_cycle(now);
  tcdm.begin_cycle();
  s.tick_fetch(now, tcdm, mem, TcdmPortId::kSsr0);
  EXPECT_EQ(tcdm.stats().out_of_range, 1u);
  EXPECT_EQ(tcdm.stats().reads, 0u);
  // No bank was occupied by the main-memory fetch.
  EXPECT_TRUE(tcdm.request(TcdmPortId::kCoreLsu, kBase, false));
  s.begin_cycle(++now);
  ASSERT_TRUE(s.can_pop());
  u64 bits = s.pop();
  double v;
  std::memcpy(&v, &bits, 8);
  EXPECT_EQ(v, 42.5);
}

#ifdef NDEBUG
TEST(ClusterTcdm, OutOfRangeAddressIsCountedNotWrapped) {
  // Below-base addresses used to wrap through the u32 subtraction into a
  // bogus bank; release builds now count them and leave the banks alone
  // (debug builds assert).
  Tcdm t;
  t.begin_cycle();
  EXPECT_TRUE(t.request(0u, kBase - 8, false));
  EXPECT_EQ(t.stats().out_of_range, 1u);
  EXPECT_EQ(t.stats().reads, 0u);
  EXPECT_EQ(t.stats().conflicts, 0u);
  // No bank was marked busy by the stray request.
  for (u32 b = 0; b < t.config().num_banks; ++b) {
    EXPECT_TRUE(t.request(1u, kBase + 8 * b, false));
  }
}
#endif

// --- hartid CSRs -------------------------------------------------------------

Program hartid_probe() {
  auto r = assembler::assemble(R"(
      csrr a0, mhartid
      csrr a1, mnumharts
      ecall
  )");
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

TEST(Cluster, HartidAndNumHartsCsrs) {
  Memory mem;
  sim::SimConfig cfg;
  cfg.num_cores = 4;
  sim::Cluster cluster(hartid_probe(), mem, cfg);
  ASSERT_EQ(cluster.run(), HaltReason::kEcall) << cluster.error();
  for (u32 h = 0; h < 4; ++h) {
    const ArchState s = cluster.arch_state(h);
    EXPECT_EQ(s.x[isa::kA0], h);
    EXPECT_EQ(s.x[isa::kA1], 4u);
  }
}

TEST(Iss, HartidAndNumHartsCsrs) {
  Memory mem;
  IssConfig cfg;
  cfg.hartid = 2;
  cfg.num_harts = 4;
  Iss iss(hartid_probe(), mem, cfg);
  ASSERT_EQ(iss.run(), HaltReason::kEcall) << iss.error();
  EXPECT_EQ(iss.state().x[isa::kA0], 2u);
  EXPECT_EQ(iss.state().x[isa::kA1], 4u);
}

// --- sense-reversing barrier -------------------------------------------------

/// Each hart publishes hartid+1 into slot[hartid], barriers, then copies its
/// right neighbor's slot into out[hartid]. Without a working barrier a hart
/// can read the neighbor's slot before it was written (0).
Program barrier_exchange(u32 max_harts) {
  ProgramBuilder b;
  const kernels::BarrierData bar = kernels::alloc_barrier(b, max_harts);
  const Addr slots = b.data_zero(max_harts * 4);
  const Addr out = b.data_zero(max_harts * 4);

  b.csrr(isa::kA0, isa::csr::kMhartid);
  b.csrr(isa::kA1, isa::csr::kMnumharts);
  b.li(isa::kS1, 0); // local barrier sense

  // slots[hartid] = hartid + 1
  b.addi(isa::kA2, isa::kA0, 1);
  b.slli(isa::kT0, isa::kA0, 2);
  b.la(isa::kT1, slots);
  b.add(isa::kT1, isa::kT1, isa::kT0);
  b.sw(isa::kA2, isa::kT1, 0);

  kernels::emit_barrier(b, bar, isa::kA0, isa::kA1, isa::kS1, isa::kT0,
                        isa::kT1, isa::kT2, "bar0");

  // out[hartid] = slots[(hartid + 1) % nharts]
  b.addi(isa::kA2, isa::kA0, 1);
  b.remu(isa::kA2, isa::kA2, isa::kA1);
  b.slli(isa::kT0, isa::kA2, 2);
  b.la(isa::kT1, slots);
  b.add(isa::kT1, isa::kT1, isa::kT0);
  b.lw(isa::kA3, isa::kT1, 0);
  b.slli(isa::kT0, isa::kA0, 2);
  b.la(isa::kT1, out);
  b.add(isa::kT1, isa::kT1, isa::kT0);
  b.sw(isa::kA3, isa::kT1, 0);

  // Second episode: the sense must reverse cleanly (regression for a
  // one-shot barrier that only works once).
  kernels::emit_barrier(b, bar, isa::kA0, isa::kA1, isa::kS1, isa::kT0,
                        isa::kT1, isa::kT2, "bar1");
  b.ecall();
  return b.build();
}

TEST(Cluster, SenseReversingBarrierSynchronizesHarts) {
  for (u32 n : {2u, 4u, 8u}) {
    SCOPED_TRACE("cores=" + std::to_string(n));
    ProgramBuilder probe; // rebuild to recover the data layout
    const kernels::BarrierData bar = kernels::alloc_barrier(probe, 8);
    const Addr slots = probe.data_zero(8 * 4);
    const Addr out = probe.data_zero(8 * 4);
    (void)bar;
    (void)slots;

    Memory mem;
    sim::SimConfig cfg;
    cfg.num_cores = n;
    cfg.max_cycles = 200'000;
    sim::Cluster cluster(barrier_exchange(8), mem, cfg);
    ASSERT_EQ(cluster.run(), HaltReason::kEcall) << cluster.error();
    for (u32 h = 0; h < n; ++h) {
      const u32 want = ((h + 1) % n) + 1;
      EXPECT_EQ(mem.load(out + 4 * h, 4), want) << "hart " << h;
    }
  }
}

// --- per-core programs -------------------------------------------------------

TEST(Cluster, OneProgramPerCore) {
  // Two different raw programs, one per core, writing distinct values to
  // distinct addresses of the shared TCDM.
  const auto writer = [](u32 value, Addr addr) {
    ProgramBuilder b;
    b.li(isa::kT0, static_cast<i64>(value));
    b.la(isa::kT1, addr);
    b.sw(isa::kT0, isa::kT1, 0);
    b.ecall();
    return b.build();
  };
  std::vector<Program> programs;
  programs.push_back(writer(111, kBase + 0x100));
  programs.push_back(writer(222, kBase + 0x200));

  api::RunRequest request =
      api::RunRequest::for_programs(std::move(programs), "pair",
                                    api::EngineSel::kBoth);
  struct Probe : api::Observer {
    u32 a = 0, b = 0;
    void on_halt(const api::RunReport&, const sim::Simulator*,
                 const Memory* memory) override {
      a = static_cast<u32>(memory->load(kBase + 0x100, 4));
      b = static_cast<u32>(memory->load(kBase + 0x200, 4));
    }
  } probe;
  request.observers.push_back(&probe);
  const api::RunReport report = api::run(request);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.num_cores, 2u);
  ASSERT_EQ(report.cores.size(), 2u);
  EXPECT_EQ(probe.a, 111u);
  EXPECT_EQ(probe.b, 222u);
}

TEST(Cluster, ProgramCountMustMatchCores) {
  std::vector<Program> programs;
  programs.push_back(hartid_probe());
  programs.push_back(hartid_probe());
  api::RunRequest request = api::RunRequest::for_programs(std::move(programs));
  request.config.num_cores = 3; // contradicts programs.size()
  const api::RunReport report = api::run(request);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("num_cores"), std::string::npos) << report.error;
}

// --- multi-core determinism + contention (acceptance criteria) ---------------

api::RunRequest axpy_par_request(u32 cores) {
  api::RunRequest r = api::RunRequest::for_kernel("axpy", "chained_par",
                                                  {{"n", 512}});
  r.config.num_cores = cores;
  return r;
}

TEST(Cluster, FourCoreAxpyParIsDeterministic) {
  const api::RunReport first = api::run(axpy_par_request(4));
  ASSERT_TRUE(first.ok) << first.error;
  ASSERT_EQ(first.cores.size(), 4u);

  // Repeated runs and different host worker counts must be bit-identical
  // (everything except wall_s).
  api::Engine serial(api::EngineConfig{.threads = 1});
  api::Engine parallel(api::EngineConfig{.threads = 7});
  std::vector<api::RunRequest> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(axpy_par_request(4));
  const auto a = serial.run_batch(batch);
  const auto b = parallel.run_batch(std::move(batch));
  for (const auto* reports : {&a, &b}) {
    for (const api::RunReport& r : *reports) {
      ASSERT_TRUE(r.ok) << r.error;
      std::string jr = r.to_json().dump();
      std::string jf = first.to_json().dump();
      jr.erase(jr.find("\"wall_s\""));
      jf.erase(jf.find("\"wall_s\""));
      EXPECT_EQ(jr, jf);
    }
  }

  // Contention is real: strictly more TCDM conflicts than the 1-core run.
  const api::RunReport solo = api::run(axpy_par_request(1));
  ASSERT_TRUE(solo.ok) << solo.error;
  EXPECT_GT(first.tcdm_conflicts, solo.tcdm_conflicts);
  // And the aggregate per-core sections are consistent with the totals.
  u64 retired = 0;
  for (const auto& core : first.cores) retired += core.perf.total_retired();
  EXPECT_EQ(retired, first.perf.total_retired());
}

TEST(Cluster, TwoCoreAxpyParBeatsSerialization) {
  // The CI smoke: 2-core chained_par must be genuinely parallel, i.e. finish
  // the same total work in clearly fewer cycles than 1 core (a serialized
  // cluster would take about as long as the 1-core run).
  const api::RunReport one = api::run(axpy_par_request(1));
  const api::RunReport two = api::run(axpy_par_request(2));
  ASSERT_TRUE(one.ok) << one.error;
  ASSERT_TRUE(two.ok) << two.error;
  EXPECT_LT(two.cycles, one.cycles * 3 / 4)
      << "2-core run is not meaningfully faster than 1 core";
  EXPECT_GE(two.tcdm_conflicts, one.tcdm_conflicts);
}

TEST(Cluster, SingleCoreReportMatchesPreClusterShape) {
  // num_cores=1 reports carry the new sections but the v1 fields must be
  // exactly the single-core values (cycles == core 0 cycles, aggregate perf
  // == core 0 perf, cluster-mean utilization == core utilization).
  const api::RunReport r = api::run(
      api::RunRequest::for_kernel("axpy", "chained", {{"n", 256}}));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.num_cores, 1u);
  ASSERT_EQ(r.cores.size(), 1u);
  EXPECT_EQ(r.cores[0].cycles, r.cycles);
  EXPECT_EQ(r.cores[0].perf.total_retired(), r.perf.total_retired());
  EXPECT_DOUBLE_EQ(r.cores[0].fpu_utilization, r.fpu_utilization);
  EXPECT_EQ(r.tcdm_out_of_range, 0u);
}

// --- parallel variants validate at every size/core combination ---------------

TEST(Cluster, ParVariantsValidateAcrossCoreCounts) {
  const struct {
    const char* kernel;
    kernels::SizeMap sizes;
  } cases[] = {
      {"axpy", {{"n", 256}}},
      {"vecop", {{"n", 256}}},
      {"gemv", {{"m", 32}, {"n", 24}}},
      {"gemv", {{"m", 12}, {"n", 7}}}, // groups not divisible by cores
  };
  for (const auto& test_case : cases) {
    for (u32 cores : {1u, 2u, 3u, 4u, 8u}) {
      SCOPED_TRACE(std::string(test_case.kernel) + " cores=" +
                   std::to_string(cores));
      api::RunRequest r = api::RunRequest::for_kernel(
          test_case.kernel, "chained_par", test_case.sizes,
          api::EngineSel::kBoth); // ISS per hart + lockstep + golden
      r.config.num_cores = cores;
      const api::RunReport report = api::run(r);
      EXPECT_TRUE(report.ok) << report.error;
      EXPECT_EQ(report.mismatches, 0u);
      EXPECT_EQ(report.lockstep_mismatches, 0u);
    }
  }
}

} // namespace
} // namespace sch
