// Extended ISS coverage: single-precision arithmetic with NaN boxing,
// float<->double conversions, SSR config readback, CSR side-effect corner
// cases, and frep validation paths.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "iss/exec_semantics.hpp"
#include "iss/iss.hpp"
#include "mem/memory.hpp"

namespace sch {
namespace {

constexpr Addr kD = memmap::kTcdmBase;

Program prog(std::string_view src) {
  auto r = assembler::assemble(src);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

struct R {
  HaltReason halt;
  ArchState state;
  std::string error;
};

R run(std::string_view src, Memory& mem) {
  Iss iss(prog(src), mem);
  const HaltReason h = iss.run();
  return {h, iss.state(), iss.error()};
}

TEST(IssF32, ArithmeticAndBoxing) {
  Memory mem;
  const auto r = run(R"(
    .data
v: .float 1.5, 2.5, -4.0
out: .zero 16
    .text
    la a0, v
    flw ft0, 0(a0)
    flw ft1, 4(a0)
    flw ft2, 8(a0)
    fadd.s ft3, ft0, ft1       # 4.0
    fmul.s ft4, ft3, ft2       # -16.0
    fmadd.s ft5, ft0, ft1, ft2 # -0.25
    fsw ft4, 12(a0)
    fsw ft5, 16(a0)
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(mem.load_f32(kD + 12), -16.0f);
  EXPECT_EQ(mem.load_f32(kD + 16), -0.25f);
  // Register values must be NaN-boxed.
  EXPECT_EQ(r.state.f[isa::kFt3] >> 32, 0xFFFF'FFFFull);
}

TEST(IssF32, ImproperBoxReadsAsNan) {
  Memory mem;
  const auto r = run(R"(
    .data
v: .double 1.0
    .text
    la a0, v
    fld ft0, 0(a0)        # f64 pattern: NOT a boxed f32
    fadd.s ft1, ft0, ft0  # must treat operand as canonical NaN
    feq.s a1, ft1, ft1    # NaN != NaN -> 0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA1], 0u);
}

TEST(IssF32, ConversionChain) {
  Memory mem;
  const auto r = run(R"(
    .data
v: .double 2.75
    .text
    la a0, v
    fld ft0, 0(a0)
    fcvt.s.d ft1, ft0       # 2.75f
    fcvt.d.s ft2, ft1       # 2.75
    feq.d a1, ft0, ft2      # exact in f32 -> equal
    fcvt.w.s a2, ft1        # round-to-nearest-even -> 3
    fcvt.s.w ft3, a2
    fcvt.wu.s a3, ft3
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA1], 1u);
  EXPECT_EQ(static_cast<i32>(r.state.x[isa::kA2]), 3);
  EXPECT_EQ(r.state.x[isa::kA3], 3u);
}

TEST(IssScfg, ConfigReadback) {
  Memory mem;
  const auto r = run(R"(
    li t0, 26
    scfgw t0, 8        # ssr0 bound0
    scfgr a0, 8        # read it back
    li t0, -216
    scfgw t0, 28       # ssr0 stride1 (negative)
    scfgr a1, 28
    scfgr a2, 0        # ssr0 status: not armed -> 0
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA0], 26u);
  EXPECT_EQ(static_cast<i32>(r.state.x[isa::kA1]), -216);
  EXPECT_EQ(r.state.x[isa::kA2], 0u);
}

TEST(IssScfg, OutOfRangeIndexIsError) {
  Memory mem;
  const auto r = run(R"(
    li t0, 1
    scfgw t0, 2000
    ecall
  )", mem);
  EXPECT_EQ(r.halt, HaltReason::kError);
  EXPECT_NE(r.error.find("scfgw"), std::string::npos);
}

TEST(IssCsr, CsrrsWithX0DoesNotWrite) {
  Memory mem;
  // csrr (csrrs rd, csr, x0) must not clear side-effecting CSR state.
  const auto r = run(R"(
    li t0, 12
    csrw chain_mask, t0
    csrr a0, chain_mask
    csrr a1, chain_mask     # still 12
    csrrci a2, chain_mask, 0 # zimm 0: read-only, no clear
    csrr a3, chain_mask
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA0], 12u);
  EXPECT_EQ(r.state.x[isa::kA1], 12u);
  EXPECT_EQ(r.state.x[isa::kA3], 12u);
}

TEST(IssCsr, FcsrFields) {
  Memory mem;
  const auto r = run(R"(
    li t0, 0xE5
    csrw fcsr, t0
    csrr a0, fflags      # low 5 bits: 0x05
    csrr a1, frm         # bits 7:5 -> 0x7
    csrwi fflags, 0x1F
    csrr a2, fcsr        # frm kept, fflags replaced
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA0], 0x05u);
  EXPECT_EQ(r.state.x[isa::kA1], 0x7u);
  EXPECT_EQ(r.state.x[isa::kA2], 0xFFu);
}

TEST(IssFrep, BodyCrossingTextEndIsError) {
  Memory mem;
  const auto r = run(R"(
    li t0, 1
    frep.o t0, 3
    fadd.d ft1, ft1, ft1
  )", mem);
  EXPECT_EQ(r.halt, HaltReason::kError);
  EXPECT_NE(r.error.find("frep"), std::string::npos) << r.error;
}

TEST(IssFrep, ZeroRepetitionsRunsOnce) {
  Memory mem;
  // rs1 = 0 -> body executes once (reps = rs1 + 1).
  const auto r = run(R"(
    li t0, 0
    li t1, 1
    fcvt.d.w ft1, x0
    fcvt.d.w ft2, t1
    frep.o t0, 1
    fadd.d ft1, ft1, ft2
    fcvt.w.d a0, ft1
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA0], 1u);
}

TEST(IssMisc, FenceIsNoOp) {
  Memory mem;
  const auto r = run(R"(
    li a0, 1
    fence
    addi a0, a0, 1
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  EXPECT_EQ(r.state.x[isa::kA0], 2u);
}

TEST(IssMisc, EbreakHalts) {
  Memory mem;
  const auto r = run(R"(
    li a0, 9
    ebreak
    li a0, 1
  )", mem);
  EXPECT_EQ(r.halt, HaltReason::kEbreak);
  EXPECT_EQ(r.state.x[isa::kA0], 9u);
}

TEST(IssMisc, MulhVariantsAgainstWideMath) {
  Memory mem;
  const auto r = run(R"(
    li a0, 0x80000000
    li a1, 0xFFFFFFFF
    mulh a2, a0, a1      # signed x signed
    mulhu a3, a0, a1     # unsigned x unsigned
    mulhsu a4, a0, a1    # signed x unsigned
    ecall
  )", mem);
  ASSERT_EQ(r.halt, HaltReason::kEcall) << r.error;
  const i64 sa = static_cast<i32>(0x8000'0000);
  const i64 sb = static_cast<i32>(0xFFFF'FFFF);
  EXPECT_EQ(r.state.x[isa::kA2], static_cast<u32>((sa * sb) >> 32));
  EXPECT_EQ(r.state.x[isa::kA3],
            static_cast<u32>((0x8000'0000ull * 0xFFFF'FFFFull) >> 32));
  EXPECT_EQ(r.state.x[isa::kA4],
            static_cast<u32>((sa * static_cast<i64>(0xFFFF'FFFFull)) >> 32));
}

} // namespace
} // namespace sch
