// Static-verifier coverage: one hand-built positive case per finding kind
// (the analyzer must flag every injected defect class), plus the
// false-positive gate -- every registry kernel x variant and the whole fuzz
// corpus must come back error-free, with the only tolerated warning being the
// documented chain_gated_saturation on the chained stencil family (the shape
// of the two pinned 4-core deadlocks).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/engine.hpp"
#include "asm/builder.hpp"
#include "fuzz/fuzz.hpp"
#include "isa/csr.hpp"
#include "isa/reg.hpp"
#include "kernels/registry.hpp"
#include "ssr/ssr_config.hpp"
#include "verify/verify.hpp"

namespace sch::verify {
namespace {

using isa::kA0;
using isa::kT0;
using isa::kT1;
using isa::kT2;
using isa::kT3;

sim::SimConfig config(u32 cores = 1) {
  sim::SimConfig cfg;
  cfg.num_cores = cores;
  return cfg;
}

bool has(const Report& r, FindingKind k) {
  for (const Finding& f : r.findings) {
    if (f.kind == k) return true;
  }
  return false;
}

const Finding* first(const Report& r, FindingKind k) {
  for (const Finding& f : r.findings) {
    if (f.kind == k) return &f;
  }
  return nullptr;
}

std::string dump(const Report& r) {
  std::string out;
  for (const Finding& f : r.findings) {
    out += std::string("[") + finding_kind_name(f.kind) + "] " + f.message +
           "\n";
  }
  return out;
}

/// Enable chaining for FP registers in `mask` (CSR 0x7C3).
void enable_chain(ProgramBuilder& b, u32 mask) {
  b.li(kT2, mask);
  b.csrw(isa::csr::kChainMask, kT2);
}

/// Arm SSR `ssr` as a 1-D linear stream over [base, base + n*8), reading
/// unless `write`.
void arm_linear(ProgramBuilder& b, u8 ssr, Addr base, i64 n, bool write,
                i64 stride = 8) {
  using ssr::CfgReg;
  b.li(kT0, n - 1);
  b.scfgw(kT0, ssr::cfg_index(ssr, CfgReg::kBound0));
  b.li(kT0, stride);
  b.scfgw(kT0, ssr::cfg_index(ssr, CfgReg::kStride0));
  b.li(kT0, static_cast<i64>(base));
  b.scfgw(kT0, ssr::cfg_index(
                   ssr, write ? CfgReg::kWptr0 : CfgReg::kRptr0));
}

// --- chain FIFO findings ---------------------------------------------------

TEST(VerifyChain, UnderflowConsumerWithoutProducer) {
  // The test_watchdog wedge: f16 is chained but nothing ever pushes into it,
  // so the fadd pops an empty FIFO and stalls forever.
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0});
  b.la(kT0, cst);
  b.fld(3, kT0, 0);
  enable_chain(b, 1u << 16);
  b.fadd_d(24, 16, 3);
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kChainUnderflow)) << dump(r);
  const Finding* f = first(r, FindingKind::kChainUnderflow);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->reg, 16);
  EXPECT_EQ(f->hart, 0);
  EXPECT_GE(f->pc, 0);
}

TEST(VerifyChain, OverflowBeyondFifoCapacity) {
  // Five pushes into ft3 with no pop: capacity is fpu_depth+1 = 4, so the
  // fifth producer wedges at writeback with the issue latch held.
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0, 2.0});
  b.la(kT0, cst);
  b.fld(4, kT0, 0);
  b.fld(5, kT0, 8);
  enable_chain(b, 1u << 3);
  for (int i = 0; i < 5; ++i) b.fadd_d(3, 4, 5);
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kChainOverflow)) << dump(r);
  EXPECT_EQ(first(r, FindingKind::kChainOverflow)->reg, 3);
  EXPECT_EQ(first(r, FindingKind::kChainOverflow)->severity, Severity::kError);
}

TEST(VerifyChain, ExactCapacityIsNotOverflow) {
  // capacity pushes then capacity pops is the legal high-water mark.
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0, 2.0});
  b.la(kT0, cst);
  b.fld(4, kT0, 0);
  b.fld(5, kT0, 8);
  enable_chain(b, 1u << 3);
  for (int i = 0; i < 4; ++i) b.fadd_d(3, 4, 5);
  for (int i = 0; i < 4; ++i) b.fadd_d(10 + i, 3, 4);
  b.csrwi(isa::csr::kChainMask, 0);
  b.ecall();
  const Report r = analyze(b.build(), config());
  EXPECT_TRUE(r.clean()) << dump(r);
}

TEST(VerifyChain, PathImbalanceAcrossBranch) {
  // A data-dependent branch pushes into ft3 on one path only; at the join
  // the FIFO occupancy depends on which way the branch went.
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0, 2.0});
  b.la(kT0, cst);
  b.fld(4, kT0, 0);
  b.fld(5, kT0, 8);
  b.lw(kT1, kT0, 0);  // unknown to the analyzer: both branch paths explored
  enable_chain(b, 1u << 3);
  b.beqz(kT1, "skip");
  b.fadd_d(3, 4, 5);
  b.label("skip");
  b.fadd_d(10, 4, 5);
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kChainPathImbalance)) << dump(r);
  EXPECT_EQ(first(r, FindingKind::kChainPathImbalance)->reg, 3);
}

TEST(VerifyChain, FrepBodyImbalanceAccumulates) {
  // A push-only FREP body gains one token per iteration; with reps > 1 the
  // imbalance is guaranteed to overflow eventually.
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0, 2.0});
  b.la(kT0, cst);
  b.fld(4, kT0, 0);
  b.fld(5, kT0, 8);
  enable_chain(b, 1u << 3);
  b.li(kT1, 1);  // reps = rs1 + 1 = 2
  b.frep_o(kT1, 1);
  b.fadd_d(3, 4, 5);
  b.csrwi(isa::csr::kChainMask, 0);
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kChainFrepImbalance)) << dump(r);
  EXPECT_EQ(first(r, FindingKind::kChainFrepImbalance)->reg, 3);
}

TEST(VerifyChain, BalancedFrepBodyIsClean) {
  // The axpy shape: push then pop inside the body nets zero per iteration.
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0, 2.0});
  b.la(kT0, cst);
  b.fld(4, kT0, 0);
  b.fld(5, kT0, 8);
  enable_chain(b, 1u << 3);
  b.li(kT1, 7);
  b.frep_o(kT1, 2);
  b.fmul_d(3, 4, 5);
  b.fadd_d(10, 3, 4);
  b.csrwi(isa::csr::kChainMask, 0);
  b.ecall();
  const Report r = analyze(b.build(), config());
  EXPECT_TRUE(r.clean()) << dump(r);
}

TEST(VerifyChain, GatedSaturationOnIndirectGather) {
  // The pinned-deadlock shape: push-only producers whose issue is gated on
  // an indirect SSR gather, with >= 2 values already in flight. Warning, not
  // error -- the wedge is schedule-dependent.
  using ssr::CfgReg;
  ProgramBuilder b;
  const Addr idx = b.data_zero(64);
  b.li(kT0, 7);
  b.scfgw(kT0, ssr::cfg_index(0, CfgReg::kBound0));
  b.li(kT0, 1u << 16 | 2);  // indirect enable, 4-byte indices
  b.scfgw(kT0, ssr::cfg_index(0, CfgReg::kIdxCfg));
  b.li(kT0, static_cast<i64>(idx));
  b.scfgw(kT0, ssr::cfg_index(0, CfgReg::kIdxBase));
  b.li(kT0, static_cast<i64>(memmap::kTcdmBase));
  b.scfgw(kT0, ssr::cfg_index(0, CfgReg::kRptr0));
  b.csrwi(isa::csr::kSsrEnable, 1);
  enable_chain(b, 1u << 3);
  b.fmul_d(3, 0, 0);  // gather, push ft3 (1 in flight)
  b.fmul_d(3, 0, 0);  // gather, push ft3 (2 in flight)
  b.fmul_d(3, 0, 0);  // gather-gated push with 2 outstanding: the hazard
  b.fadd_d(10, 3, 0);
  b.fadd_d(11, 3, 0);
  b.fadd_d(12, 3, 0);
  b.csrwi(isa::csr::kChainMask, 0);
  b.csrwi(isa::csr::kSsrEnable, 0);
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kChainGatedSaturation)) << dump(r);
  const Finding* f = first(r, FindingKind::kChainGatedSaturation);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->reg, 3);
  // The message must explain the chain-wait cycle, not just point at a pc.
  EXPECT_NE(f->message.find("chain-full"), std::string::npos) << f->message;
  EXPECT_EQ(r.errors(), 0u) << dump(r);
}

TEST(VerifyChain, LeftoverTokensAtHalt) {
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0, 2.0});
  b.la(kT0, cst);
  b.fld(4, kT0, 0);
  b.fld(5, kT0, 8);
  enable_chain(b, 1u << 3);
  b.fadd_d(3, 4, 5);  // one push, never popped
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kChainLeftover)) << dump(r);
  EXPECT_EQ(first(r, FindingKind::kChainLeftover)->severity,
            Severity::kWarning);
}

// --- SSR stream findings ---------------------------------------------------

TEST(VerifySsr, WindowOutOfBounds) {
  // A read stream whose affine hull runs off the end of TCDM.
  ProgramBuilder b;
  arm_linear(b, 0, memmap::kTcdmBase + memmap::kTcdmSize - 8, 100, false);
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kSsrOutOfBounds)) << dump(r);
  EXPECT_EQ(first(r, FindingKind::kSsrOutOfBounds)->reg, 0);
}

TEST(VerifySsr, NegativeStrideWindowInBoundsIsClean) {
  // gemm walks B columns with negative strides; the hull must account for
  // them instead of flagging base-relative-descending windows.
  ProgramBuilder b;
  arm_linear(b, 0, memmap::kTcdmBase + 1024, 8, false, -8);
  b.ecall();
  const Report r = analyze(b.build(), config());
  EXPECT_FALSE(has(r, FindingKind::kSsrOutOfBounds)) << dump(r);
}

TEST(VerifySsr, ConcurrentReadWriteOverlap) {
  // SSR0 reads [base, +64) while SSR1 writes the same window: the read/write
  // interleave is timing-defined.
  ProgramBuilder b;
  const Addr buf = b.data_zero(64);
  arm_linear(b, 0, buf, 8, false);
  arm_linear(b, 1, buf, 8, true);
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kSsrOverlap)) << dump(r);
}

TEST(VerifySsr, DisjointStreamsAreClean) {
  ProgramBuilder b;
  const Addr a = b.data_zero(64);
  const Addr z = b.data_zero(64);
  arm_linear(b, 0, a, 8, false);
  arm_linear(b, 2, z, 8, true);
  b.ecall();
  const Report r = analyze(b.build(), config());
  EXPECT_FALSE(has(r, FindingKind::kSsrOverlap)) << dump(r);
}

TEST(VerifySsr, DirectionMismatchReadOfWriteStream) {
  // ft0 is armed as a *write* stream; reading it is a hard model error.
  ProgramBuilder b;
  const Addr buf = b.data_zero(64);
  arm_linear(b, 0, buf, 8, true);
  b.csrwi(isa::csr::kSsrEnable, 1);
  b.fadd_d(5, 0, 0);
  b.csrwi(isa::csr::kSsrEnable, 0);
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kSsrDirectionMismatch)) << dump(r);
  EXPECT_EQ(first(r, FindingKind::kSsrDirectionMismatch)->severity,
            Severity::kError);
}

// --- FREP structural findings ----------------------------------------------

TEST(VerifyFrep, BranchIntoBodyIsFlagged) {
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0, 2.0});
  b.la(kT0, cst);
  b.fld(4, kT0, 0);
  b.fld(5, kT0, 8);
  b.li(kT1, 3);
  b.frep_o(kT1, 2);
  b.fadd_d(10, 4, 5);
  b.label("inside");
  b.fadd_d(11, 4, 5);
  b.lw(kT3, kT0, 0);
  b.beqz(kT3, "inside");  // jumps into the sequencer's replay window
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kFrepBranchIntoBody)) << dump(r);
}

TEST(VerifyFrep, NonFpBodyIsIllegal) {
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0, 2.0});
  b.la(kT0, cst);
  b.fld(4, kT0, 0);
  b.li(kT1, 3);
  b.frep_o(kT1, 2);
  b.fadd_d(10, 4, 4);
  b.addi(kT2, kT2, 1);  // integer instruction inside an FREP body
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kFrepIllegalBody)) << dump(r);
}

TEST(VerifyFrep, BodyLargerThanSequencerBufferIsIllegal) {
  // The cycle engine's sequencer ring holds seq_buffer_depth entries; a
  // larger body is a sticky runtime error there, so the verifier flags it.
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0, 2.0});
  b.la(kT0, cst);
  b.fld(4, kT0, 0);
  b.li(kT1, 3);
  b.frep_o(kT1, 3);
  b.fadd_d(10, 4, 4);
  b.fadd_d(11, 4, 4);
  b.fadd_d(12, 4, 4);
  b.ecall();
  sim::SimConfig cfg = config();
  cfg.seq_buffer_depth = 2;
  const Report r = analyze(b.build(), cfg);
  ASSERT_TRUE(has(r, FindingKind::kFrepIllegalBody)) << dump(r);
  EXPECT_TRUE(analyze(b.build(), config()).clean());  // fits the default ring
}

// --- cross-hart and DMA findings -------------------------------------------

TEST(VerifyRace, DistinctProgramsWritingSameWordRace) {
  const auto writer = [](i64 value) {
    ProgramBuilder b;
    b.li(kT0, static_cast<i64>(memmap::kTcdmBase) + 0x400);
    b.li(kT1, value);
    b.sw(kT1, kT0, 0);
    b.ecall();
    return b.build();
  };
  const std::vector<Program> progs = {writer(1), writer(2)};
  const Report r = analyze(progs, config(2));
  ASSERT_TRUE(has(r, FindingKind::kInterHartRace)) << dump(r);
  EXPECT_EQ(first(r, FindingKind::kInterHartRace)->severity, Severity::kError);
}

TEST(VerifyRace, IdenticalReplicasAreNotFlagged) {
  // The engine replicates one program across harts; without mhartid every
  // hart computes byte-identical results, so overlap is benign by design.
  ProgramBuilder b;
  b.li(kT0, static_cast<i64>(memmap::kTcdmBase) + 0x400);
  b.li(kT1, 7);
  b.sw(kT1, kT0, 0);
  b.ecall();
  const Report r = analyze(b.build(), config(4));
  EXPECT_FALSE(has(r, FindingKind::kInterHartRace)) << dump(r);
}

TEST(VerifyRace, MhartidPartitionedSlicesAreClean) {
  // The _par kernel shape: each hart writes its own 64-byte slice.
  ProgramBuilder b;
  b.csrr(kT1, isa::csr::kMhartid);
  b.slli(kT1, kT1, 6);
  b.li(kT0, static_cast<i64>(memmap::kTcdmBase) + 0x400);
  b.add(kT0, kT0, kT1);
  b.li(kT1, 7);
  b.sw(kT1, kT0, 0);
  b.ecall();
  const Report r = analyze(b.build(), config(4));
  EXPECT_FALSE(has(r, FindingKind::kInterHartRace)) << dump(r);
}

TEST(VerifyRace, SharedRegionSuppressesIntentionalOverlap) {
  // A declared shared window (barrier words) whitelists cross-hart writes.
  ProgramBuilder b;
  b.csrr(kT1, isa::csr::kMhartid);  // hart-dependent: replica rule won't hide it
  b.li(kT0, static_cast<i64>(memmap::kTcdmBase) + 0x400);
  b.li(kT1, 7);
  b.sw(kT1, kT0, 0);
  b.ecall();
  const Program p = b.build();
  ASSERT_TRUE(has(analyze(p, config(2)), FindingKind::kInterHartRace));
  const std::vector<MemRegion> regions = {
      {"barrier", memmap::kTcdmBase + 0x400, 64, true, true}};
  EXPECT_FALSE(
      has(analyze(p, config(2), &regions), FindingKind::kInterHartRace));
}

TEST(VerifyDma, CopyOverLiveStreamRaces) {
  // A dmcpy whose destination window overlaps an armed + enabled SSR read
  // stream: the DMA can rewrite elements mid-stream.
  ProgramBuilder b;
  const Addr src = b.data_zero(64);
  const Addr dst = b.data_zero(64);
  arm_linear(b, 0, dst, 8, false);
  b.csrwi(isa::csr::kSsrEnable, 1);
  b.li(kT0, static_cast<i64>(src));
  b.dmsrc(kT0);
  b.li(kT0, static_cast<i64>(dst));
  b.dmdst(kT0);
  b.li(kT0, 64);
  b.dmcpy(kA0, kT0);
  b.csrwi(isa::csr::kSsrEnable, 0);
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kDmaRace)) << dump(r);
}

TEST(VerifyDma, UnmappedWindowIsFlagged) {
  ProgramBuilder b;
  b.li(kT0, static_cast<i64>(memmap::kMainBase));
  b.dmsrc(kT0);
  b.li(kT0, 0x4000'0000);  // not TCDM, not main memory
  b.dmdst(kT0);
  b.li(kT0, 64);
  b.dmcpy(kA0, kT0);
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kDmaRace)) << dump(r);
}

TEST(VerifyDma, DisjointCopyIsClean) {
  ProgramBuilder b;
  const Addr src = b.data_zero(64);
  const Addr dst = b.data_zero(64);
  b.li(kT0, static_cast<i64>(src));
  b.dmsrc(kT0);
  b.li(kT0, static_cast<i64>(dst));
  b.dmdst(kT0);
  b.li(kT0, 64);
  b.dmcpy(kA0, kT0);
  b.ecall();
  const Report r = analyze(b.build(), config());
  EXPECT_TRUE(r.clean()) << dump(r);
}

// --- analysis limits -------------------------------------------------------

TEST(VerifyLimits, UnknownIndirectJumpIsReportedNotGuessed) {
  ProgramBuilder b;
  b.li(kT0, static_cast<i64>(memmap::kTcdmBase));
  b.lw(kT1, kT0, 0);
  b.jalr(0, kT1, 0);
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_TRUE(has(r, FindingKind::kAnalysisLimit)) << dump(r);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.errors(), 0u) << dump(r);
}

// --- report surface --------------------------------------------------------

TEST(VerifyReport, SummaryAndJsonCarryTheFindings) {
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0});
  b.la(kT0, cst);
  b.fld(3, kT0, 0);
  enable_chain(b, 1u << 16);
  b.fadd_d(24, 16, 3);
  b.ecall();
  const Report r = analyze(b.build(), config());
  ASSERT_FALSE(r.ok());
  const std::string s = r.summary();
  EXPECT_NE(s.find("error"), std::string::npos) << s;
  EXPECT_NE(s.find("chain_underflow"), std::string::npos) << s;
  const scenario::Json j = r.to_json();
  EXPECT_EQ(j.get("errors")->as_i64(), static_cast<i64>(r.errors()));
  EXPECT_EQ(j.get("findings")->items().size(), r.findings.size());
  EXPECT_TRUE(analyze(ProgramBuilder{}.build(), config()).summary().empty());
}

// --- api surface: RunRequest::verify ---------------------------------------

Program wedged_consumer() {
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.0});
  b.la(kT0, cst);
  b.fld(3, kT0, 0);
  b.li(kT2, 1u << 16);
  b.csrw(isa::csr::kChainMask, kT2);
  b.fadd_d(24, 16, 3);
  b.ecall();
  return b.build();
}

TEST(VerifyApi, StrictPolicyFailsBeforeTheEngineSpins) {
  api::RunRequest req =
      api::RunRequest::for_program(wedged_consumer(), "wedge");
  req.verify = api::VerifyPolicy::kStrict;
  Report sink;
  req.verify_sink = &sink;
  req.config.deadlock_cycles = 2000;
  const api::RunReport rep = api::run(req);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.failure.kind, api::FailureKind::kValidation);
  EXPECT_NE(rep.error.find("static verification failed"), std::string::npos)
      << rep.error;
  EXPECT_NE(rep.error.find("chain_underflow"), std::string::npos)
      << rep.error;
  // The engine never ran: strict mode rejects at analysis time, it does not
  // wait for the watchdog to catch the wedge dynamically.
  EXPECT_EQ(rep.cycles, 0u);
  ASSERT_FALSE(sink.findings.empty());
  EXPECT_TRUE(has(sink, FindingKind::kChainUnderflow));
}

TEST(VerifyApi, WarnPolicyRecordsFindingsAndStillRuns) {
  api::RunRequest req =
      api::RunRequest::for_program(wedged_consumer(), "wedge-warn");
  req.verify = api::VerifyPolicy::kWarn;
  Report sink;
  req.verify_sink = &sink;
  req.config.deadlock_cycles = 2000;
  req.config.max_cycles = 200000;
  const api::RunReport rep = api::run(req);
  // The run proceeds and the watchdog catches the wedge dynamically -- warn
  // mode observes, it does not gate.
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.failure.kind, api::FailureKind::kDeadlock);
  EXPECT_TRUE(has(sink, FindingKind::kChainUnderflow));
}

TEST(VerifyApi, StrictPolicyPassesCleanKernels) {
  api::RunRequest req = api::RunRequest::for_kernel("axpy", "chained");
  req.verify = api::VerifyPolicy::kStrict;
  Report sink;
  req.verify_sink = &sink;
  const api::RunReport rep = api::run(req);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(sink.clean()) << dump(sink);
}

TEST(VerifyApi, StrictToleratesWarningsButSinkRecordsThem) {
  // box3d1r/Chaining+ carries the documented gated-saturation warning;
  // strict mode only rejects on errors.
  api::RunRequest req = api::RunRequest::for_kernel("box3d1r", "Chaining+");
  req.verify = api::VerifyPolicy::kStrict;
  req.config.num_cores = 1;  // 4-core chained stencils are the pinned wedge
  Report sink;
  req.verify_sink = &sink;
  const api::RunReport rep = api::run(req);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(has(sink, FindingKind::kChainGatedSaturation)) << dump(sink);
  EXPECT_EQ(sink.errors(), 0u) << dump(sink);
}

// --- false-positive gate ---------------------------------------------------

/// Kernels whose chained variant pushes into the chain FIFO from producers
/// gated on an indirect gather: the documented gated-saturation hazard (the
/// pinned 4-core deadlock shape). box3d1r/star3d1r actually wedge at 4
/// cores; j3d27pt and conv2d share the shape and survive by gather timing.
bool is_gather_gated_chained(const std::string& kernel,
                             const std::string& variant) {
  if (kernel == "conv2d") return variant == "chained";
  const bool stencil =
      kernel == "box3d1r" || kernel == "star3d1r" || kernel == "j3d27pt";
  return stencil && variant.find("Chain") != std::string::npos;
}

TEST(VerifyFalsePositiveGate, EveryRegistryKernelVariantIsErrorFree) {
  kernels::Registry& reg = kernels::Registry::instance();
  u32 checked = 0;
  for (const kernels::KernelEntry* e : reg.entries()) {
    const kernels::SizeMap sizes = e->resolve_sizes({});
    for (const std::string& variant : e->variants) {
      const kernels::BuiltKernel built = e->build(variant, sizes);
      for (u32 cores : {1u, 4u}) {
        const Report r =
            analyze(built.program, config(cores), &built.regions);
        EXPECT_EQ(r.errors(), 0u)
            << e->name << "/" << variant << " @" << cores << " cores:\n"
            << dump(r);
        EXPECT_TRUE(r.complete) << e->name << "/" << variant;
        for (const Finding& f : r.findings) {
          // The only tolerated warning: the documented gated-saturation
          // hazard on the chained stencil family (the pinned 4-core
          // deadlock shape).
          EXPECT_EQ(f.kind, FindingKind::kChainGatedSaturation)
              << e->name << "/" << variant << ": " << dump(r);
          EXPECT_TRUE(is_gather_gated_chained(e->name, variant))
              << e->name << "/" << variant << ": " << dump(r);
        }
        ++checked;
      }
    }
  }
  EXPECT_GE(checked, 36u);  // 9 kernels x >= 2 variants x 2 core counts
}

TEST(VerifyFalsePositiveGate, ChainedStencilsCarryTheDeadlockDiagnosis) {
  // The two pinned 4-core Chaining+ failures (box3d1r, star3d1r) must be
  // diagnosed, and the finding must explain the wait cycle.
  kernels::Registry& reg = kernels::Registry::instance();
  for (const char* name : {"box3d1r", "star3d1r"}) {
    const kernels::KernelEntry* e = reg.find(name);
    ASSERT_NE(e, nullptr);
    const kernels::BuiltKernel built =
        e->build(e->chained_variant, e->resolve_sizes({}));
    const Report r = analyze(built.program, config(4), &built.regions);
    const Finding* f = first(r, FindingKind::kChainGatedSaturation);
    ASSERT_NE(f, nullptr) << name << ":\n" << dump(r);
    EXPECT_EQ(f->severity, Severity::kWarning);
    EXPECT_NE(f->message.find("chain-full"), std::string::npos) << f->message;
    EXPECT_NE(f->message.find("issue latch"), std::string::npos) << f->message;
  }
}

TEST(VerifyFalsePositiveGate, FuzzCorpusReplaysAreClean) {
  const std::filesystem::path dir =
      std::filesystem::path(SCH_CORPUS_DIR) / "fuzz";
  u32 checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    std::ifstream in(entry.path());
    std::stringstream ss;
    ss << in.rdbuf();
    const Result<scenario::Json> j = scenario::Json::parse(ss.str());
    ASSERT_TRUE(j.ok()) << entry.path();
    fuzz::ProgramSpec spec;
    ASSERT_TRUE(fuzz::spec_from_json(j.value(), spec).is_ok()) << entry.path();
    const std::vector<Program> progs = fuzz::materialize(spec);
    const Report r = analyze(progs, config(spec.num_harts));
    EXPECT_EQ(r.errors(), 0u) << entry.path() << ":\n" << dump(r);
    ++checked;
  }
  EXPECT_GE(checked, 5u);
}

TEST(VerifyFalsePositiveGate, GeneratedFuzzProgramsAreClean) {
  // A slice of fresh generator output: the generator only emits legal
  // programs, so the analyzer finding an error here is a false positive (or
  // a generator bug -- either way, fail loudly).
  for (u64 seed : {1ull, 7ull, 42ull, 1234ull, 0xBEEFull, 99991ull}) {
    const fuzz::ProgramSpec spec = fuzz::generate_spec(seed);
    const std::vector<Program> progs = fuzz::materialize(spec);
    const Report r = analyze(progs, config(spec.num_harts));
    EXPECT_EQ(r.errors(), 0u) << "seed " << seed << ":\n" << dump(r);
  }
}

} // namespace
} // namespace sch::verify
