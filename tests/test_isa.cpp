// ISA layer tests: encode/decode round-trips across the whole mnemonic space,
// immediate field boundaries, and disassembly spot checks.
#include <gtest/gtest.h>

#include "isa/decode.hpp"
#include "isa/disasm.hpp"
#include "isa/encode.hpp"
#include "isa/reg.hpp"

namespace sch::isa {
namespace {

TEST(RegNames, IntRoundTrip) {
  for (u8 r = 0; r < kNumIntRegs; ++r) {
    const auto name = int_reg_name(r);
    const auto parsed = parse_int_reg(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, r);
  }
}

TEST(RegNames, FpRoundTrip) {
  for (u8 r = 0; r < kNumFpRegs; ++r) {
    const auto name = fp_reg_name(r);
    const auto parsed = parse_fp_reg(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, r);
  }
}

TEST(RegNames, NumericForms) {
  EXPECT_EQ(parse_int_reg("x0"), 0);
  EXPECT_EQ(parse_int_reg("x31"), 31);
  EXPECT_EQ(parse_int_reg("x32"), std::nullopt);
  EXPECT_EQ(parse_fp_reg("f3"), 3);
  EXPECT_EQ(parse_int_reg("fp"), 8);
  EXPECT_EQ(parse_int_reg("bogus"), std::nullopt);
}

TEST(Encode, PaperListingInstructions) {
  // Instructions from Fig. 1 of the paper.
  const Instr fadd = make_r(Mnemonic::kFaddD, kFt3, kFt0, kFt1);
  const Instr fmul = make_r(Mnemonic::kFmulD, kFt2, kFt3, kFa0);
  const Instr addi = make_i(Mnemonic::kAddi, kA1, kA1, 1);
  const Instr bne = make_b(Mnemonic::kBne, kA1, kA2, -12);

  EXPECT_EQ(decode(fadd.raw), fadd);
  EXPECT_EQ(decode(fmul.raw), fmul);
  EXPECT_EQ(decode(addi.raw), addi);
  EXPECT_EQ(decode(bne.raw), bne);
}

TEST(Decode, InvalidEncodings) {
  EXPECT_FALSE(decode(0x0000'0000).valid());
  EXPECT_FALSE(decode(0xFFFF'FFFF).valid());
  // OP-FP with fmt=2 (reserved).
  EXPECT_FALSE(decode(0x0400'0053 | (2u << 25)).valid());
}

// Round-trip over every R-type / R4 / I / S / B / U / J instruction with a
// sweep of operand values.
class RoundTrip : public ::testing::TestWithParam<u16> {};

TEST_P(RoundTrip, EncodeDecodeIdentity) {
  const auto mn = static_cast<Mnemonic>(GetParam());
  const MnemonicInfo& mi = info(mn);
  if (mn == Mnemonic::kInvalid) return;

  auto check = [&](const Instr& in) {
    const Instr out = decode(in.raw);
    ASSERT_TRUE(out.valid()) << name(mn) << " raw=0x" << std::hex << in.raw;
    EXPECT_EQ(out.mn, in.mn) << name(mn);
    EXPECT_EQ(encode(out), in.raw) << name(mn);
  };

  switch (mi.fmt) {
    case Format::kR:
      for (u8 rd : {0, 1, 31}) {
        for (u8 rs1 : {0, 7, 31}) {
          for (u8 rs2 : {0, 15, 31}) {
            if (mi.rs2 == RegClass::kNone) {
              check(make_r(mn, rd, rs1, 0));
            } else {
              check(make_r(mn, rd, rs1, rs2));
            }
          }
        }
      }
      break;
    case Format::kR4:
      for (u8 r : {0, 3, 31}) check(make_r4(mn, r, r, r, r, 0));
      check(make_r4(mn, 1, 2, 3, 4, 7));
      break;
    case Format::kI:
      for (i32 imm : {-2048, -1, 0, 1, 2047}) {
        const bool shift = mn == Mnemonic::kSlli || mn == Mnemonic::kSrli ||
                           mn == Mnemonic::kSrai;
        const bool custom = mi.exec == ExecClass::kFrep || mi.exec == ExecClass::kScfg;
        i32 v = shift ? (imm & 31) : custom ? (imm & 2047) : imm;
        // Custom instructions hard-wire the unused register field to zero;
        // the Xdma forms additionally hard-wire unused immediates.
        u8 rd = 5, rs1 = 6;
        if (mi.exec == ExecClass::kFrep || mn == Mnemonic::kScfgw) rd = 0;
        if (mn == Mnemonic::kScfgr) rs1 = 0;
        if (mn == Mnemonic::kDmSrc || mn == Mnemonic::kDmDst) {
          rd = 0;
          v = 0;
        }
        if (mn == Mnemonic::kDmCpy) v = 0;
        if (mn == Mnemonic::kDmStat) {
          rs1 = 0;
          v = imm & 2047;
        }
        check(make_i(mn, rd, rs1, v));
      }
      break;
    case Format::kS:
      for (i32 imm : {-2048, -4, 0, 8, 2047}) check(make_s(mn, 10, 11, imm));
      break;
    case Format::kB:
      for (i32 off : {-4096, -12, 0, 36, 4094}) check(make_b(mn, 1, 2, off));
      break;
    case Format::kU:
      for (i32 imm : {0, 1, 0xFFFFF}) check(make_u(mn, 7, imm));
      break;
    case Format::kJ:
      for (i32 off : {-1048576, -4, 0, 1048574}) check(make_j(mn, 1, off));
      break;
    case Format::kCsr:
      for (u32 csr : {0x001u, 0x7C0u, 0x7C3u, 0xC00u}) check(make_csr(mn, 3, 4, csr));
      break;
    case Format::kCsrI:
      for (u8 z : {0, 8, 31}) check(make_csr(mn, 3, z, 0x7C3));
      break;
    case Format::kNone: {
      Instr in;
      in.mn = mn;
      in.raw = encode(in);
      check(in);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMnemonics, RoundTrip,
                         ::testing::Range<u16>(1, static_cast<u16>(Mnemonic::kCount)),
                         [](const ::testing::TestParamInfo<u16>& pi) {
                           std::string n{name(static_cast<Mnemonic>(pi.param))};
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

TEST(Disasm, CanonicalSpellings) {
  EXPECT_EQ(disassemble(make_r(Mnemonic::kFaddD, kFt3, kFt0, kFt1)),
            "fadd.d ft3, ft0, ft1");
  EXPECT_EQ(disassemble(make_r4(Mnemonic::kFmaddD, kFt3, kFt0, kFt1, kFt3)),
            "fmadd.d ft3, ft0, ft1, ft3");
  EXPECT_EQ(disassemble(make_i(Mnemonic::kAddi, kA0, kA0, -1)),
            "addi a0, a0, -1");
  EXPECT_EQ(disassemble(make_i(Mnemonic::kFld, kFt4, kSp, 16)),
            "fld ft4, 16(sp)");
  EXPECT_EQ(disassemble(make_s(Mnemonic::kFsd, kSp, kFt4, -8)),
            "fsd ft4, -8(sp)");
  EXPECT_EQ(disassemble(make_b(Mnemonic::kBne, kA1, kA2, -12)),
            "bne a1, a2, -12");
  EXPECT_EQ(disassemble(make_i(Mnemonic::kFrepO, 0, kT0, 4)), "frep.o t0, 4");
  EXPECT_EQ(disassemble(make_i(Mnemonic::kScfgw, 0, kT1, 9)), "scfgw t1, 9");
}

TEST(Disasm, InvalidRendersPlaceholder) {
  EXPECT_EQ(disassemble(u32{0}), "<invalid>");
}

TEST(Metadata, FpDomainFlags) {
  EXPECT_TRUE(info(Mnemonic::kFmaddD).fp_domain);
  EXPECT_TRUE(info(Mnemonic::kFld).fp_domain);
  EXPECT_TRUE(info(Mnemonic::kFsd).fp_domain);
  EXPECT_TRUE(info(Mnemonic::kFrepO).fp_domain);
  EXPECT_FALSE(info(Mnemonic::kAddi).fp_domain);
  EXPECT_FALSE(info(Mnemonic::kScfgw).fp_domain);
  EXPECT_FALSE(info(Mnemonic::kCsrrs).fp_domain);
}

TEST(Metadata, OperandClasses) {
  EXPECT_EQ(info(Mnemonic::kFmaddD).rs3, RegClass::kFp);
  EXPECT_EQ(info(Mnemonic::kFld).rs1, RegClass::kInt);
  EXPECT_EQ(info(Mnemonic::kFld).rd, RegClass::kFp);
  EXPECT_EQ(info(Mnemonic::kFsd).rs2, RegClass::kFp);
  EXPECT_EQ(info(Mnemonic::kFeqD).rd, RegClass::kInt);
  EXPECT_EQ(info(Mnemonic::kFcvtDW).rs1, RegClass::kInt);
  EXPECT_EQ(info(Mnemonic::kFcvtWD).rd, RegClass::kInt);
}

TEST(Metadata, MemBytes) {
  EXPECT_EQ(info(Mnemonic::kFld).mem_bytes, 8);
  EXPECT_EQ(info(Mnemonic::kFlw).mem_bytes, 4);
  EXPECT_EQ(info(Mnemonic::kLw).mem_bytes, 4);
  EXPECT_EQ(info(Mnemonic::kLh).mem_bytes, 2);
  EXPECT_EQ(info(Mnemonic::kSb).mem_bytes, 1);
}

} // namespace
} // namespace sch::isa
