// Golden-validation + ISS<->simulator lockstep coverage for the four
// registry-era kernels (axpy, dot, gemm, conv2d), mirroring
// tests/test_lockstep.cpp: both engines must halt cleanly, reproduce the
// golden output bit-exactly, and agree on the final architectural state.
// Each kernel must also exhibit the paper's qualitative story: the chained
// variant removes the baseline's serial-dependency stalls without spending
// architectural registers.
#include <gtest/gtest.h>

#include "iss/iss.hpp"
#include "kernels/axpy.hpp"
#include "kernels/conv2d.hpp"
#include "kernels/dot.hpp"
#include "kernels/gemm.hpp"
#include "api/engine.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"

namespace sch::kernels {
namespace {


std::vector<BuiltKernel> new_kernels() {
  std::vector<BuiltKernel> out;
  for (AxpyVariant v : {AxpyVariant::kBaseline, AxpyVariant::kChained}) {
    out.push_back(build_axpy(v));
  }
  for (DotVariant v : {DotVariant::kBaseline, DotVariant::kChained}) {
    out.push_back(build_dot(v));
  }
  for (GemmVariant v : {GemmVariant::kBaseline, GemmVariant::kChained}) {
    out.push_back(build_gemm(v));
  }
  for (Conv2dVariant v : {Conv2dVariant::kBaseline, Conv2dVariant::kChained}) {
    out.push_back(build_conv2d(v));
  }
  return out;
}

TEST(NewKernels, GoldenValidationOnBothEngines) {
  for (const BuiltKernel& k : new_kernels()) {
    SCOPED_TRACE(k.name);
    const api::RunReport ir = api::run_built_iss(k);
    EXPECT_TRUE(ir.ok) << ir.error;
    const api::RunReport sr = api::run_built(k);
    EXPECT_TRUE(sr.ok) << sr.error;
    EXPECT_GE(sr.perf.fpu_ops, k.useful_flops);
  }
}

TEST(NewKernels, IssAndSimulatorLockstep) {
  for (const BuiltKernel& k : new_kernels()) {
    SCOPED_TRACE(k.name);

    Memory mem_iss;
    Iss iss(k.program, mem_iss);
    ASSERT_EQ(iss.run(), HaltReason::kEcall) << "ISS: " << iss.error();

    Memory mem_sim;
    sim::Simulator simulator(k.program, mem_sim);
    ASSERT_EQ(simulator.run(), HaltReason::kEcall)
        << "sim: " << simulator.error();

    const ArchState& a = iss.state();
    const ArchState b = simulator.arch_state();
    for (u8 r = 0; r < isa::kNumIntRegs; ++r) {
      EXPECT_EQ(a.x[r], b.x[r]) << "x" << static_cast<int>(r);
    }
    for (u8 r = 0; r < isa::kNumFpRegs; ++r) {
      EXPECT_EQ(a.f[r], b.f[r]) << "f" << static_cast<int>(r);
    }
    for (u32 i = 0; i < k.expected.size(); ++i) {
      const double want = k.expected[i];
      EXPECT_EQ(mem_iss.load_f64(k.out_base + 8 * i), want) << "iss elem " << i;
      EXPECT_EQ(mem_sim.load_f64(k.out_base + 8 * i), want) << "sim elem " << i;
    }
  }
}

// --- the chaining story per kernel ------------------------------------------

TEST(NewKernels, AxpyChainingRemovesMulAddStalls) {
  const AxpyParams p{.n = 512};
  const api::RunReport base = api::run_built(build_axpy(AxpyVariant::kBaseline, p));
  const api::RunReport chained = api::run_built(build_axpy(AxpyVariant::kChained, p));
  ASSERT_TRUE(base.ok) << base.error;
  ASSERT_TRUE(chained.ok) << chained.error;
  // The fadd waits ~fpu_depth-1 cycles on its product every element.
  EXPECT_GT(base.perf.stall_fp_raw, 512u);
  EXPECT_EQ(chained.perf.stall_fp_raw, 0u);
  EXPECT_LT(chained.cycles, base.cycles);
  EXPECT_GT(chained.fpu_utilization, 1.3 * base.fpu_utilization);
  // ...at zero extra architectural registers.
  const BuiltKernel kb = build_axpy(AxpyVariant::kBaseline, p);
  const BuiltKernel kc = build_axpy(AxpyVariant::kChained, p);
  EXPECT_EQ(kb.regs.fp_regs_used, kc.regs.fp_regs_used);
  EXPECT_EQ(kc.regs.chained_regs, 1u);
}

TEST(NewKernels, DotChainingBreaksTheSerialReduction) {
  const DotParams p{.n = 512};
  const api::RunReport base = api::run_built(build_dot(DotVariant::kBaseline, p));
  const api::RunReport chained = api::run_built(build_dot(DotVariant::kChained, p));
  ASSERT_TRUE(base.ok) << base.error;
  ASSERT_TRUE(chained.ok) << chained.error;
  // Baseline: every fmadd stalls on the previous one -> utilization near
  // 1/fpu_depth. Chained: the FIFO rotates 4 partials -> near 1.
  EXPECT_LT(base.fpu_utilization, 0.45);
  EXPECT_GT(chained.fpu_utilization, 0.85);
  EXPECT_GT(base.perf.stall_fp_raw, 512u);
  EXPECT_LT(chained.cycles, base.cycles / 2);
}

TEST(NewKernels, GemmChainedInterleaveApproachesFullUtilization) {
  const GemmParams p{.m = 16, .k = 16, .n = 16};
  const api::RunReport base = api::run_built(build_gemm(GemmVariant::kBaseline, p));
  const api::RunReport chained = api::run_built(build_gemm(GemmVariant::kChained, p));
  ASSERT_TRUE(base.ok) << base.error;
  ASSERT_TRUE(chained.ok) << chained.error;
  EXPECT_LT(base.fpu_utilization, 0.5);
  EXPECT_GT(chained.fpu_utilization, 0.8);
  EXPECT_LT(chained.cycles, base.cycles / 2);
  // One chained accumulator replaces the serial one; no register cost.
  const BuiltKernel kc = build_gemm(GemmVariant::kChained, p);
  EXPECT_EQ(kc.regs.accumulator_regs, 1u);
  EXPECT_EQ(kc.regs.chained_regs, 1u);
}

TEST(NewKernels, Conv2dChainedInterleaveBeatsSerialTaps) {
  const Conv2dParams p{.h = 12, .w = 18};
  const api::RunReport base = api::run_built(build_conv2d(Conv2dVariant::kBaseline, p));
  const api::RunReport chained = api::run_built(build_conv2d(Conv2dVariant::kChained, p));
  ASSERT_TRUE(base.ok) << base.error;
  ASSERT_TRUE(chained.ok) << chained.error;
  EXPECT_LT(base.fpu_utilization, 0.5);
  EXPECT_GT(chained.fpu_utilization, 0.8);
  EXPECT_LT(chained.cycles, base.cycles);
  const BuiltKernel kc = build_conv2d(Conv2dVariant::kChained, p);
  EXPECT_EQ(kc.regs.coefficient_regs, 9u);
  EXPECT_EQ(kc.regs.chained_regs, 1u);
}

// --- parameter validation ----------------------------------------------------

TEST(NewKernels, InvalidParamsRejected) {
  EXPECT_THROW(build_axpy(AxpyVariant::kChained, {.n = 10, .unroll = 4}),
               std::invalid_argument);
  EXPECT_THROW(build_axpy(AxpyVariant::kChained, {.n = 16, .unroll = 1}),
               std::invalid_argument);
  EXPECT_THROW(build_dot(DotVariant::kChained, {.n = 0}), std::invalid_argument);
  EXPECT_THROW(build_gemm(GemmVariant::kChained, {.m = 6, .k = 8, .n = 8}),
               std::invalid_argument);
  EXPECT_THROW(build_conv2d(Conv2dVariant::kChained, {.h = 2, .w = 8}),
               std::invalid_argument);
  EXPECT_THROW(build_conv2d(Conv2dVariant::kChained, {.h = 5, .w = 8}),
               std::invalid_argument); // 3*6 = 18 points, not a multiple of 4
}

// The unroll parameter is what the depth-sweep scenarios vary: every
// unroll that fits the default FIFO capacity (fpu_depth + 1 = 4) must
// validate, and unroll tracks a deeper pipe.
TEST(NewKernels, UnrollTracksPipelineDepth) {
  for (u32 unroll : {2u, 3u, 4u}) {
    SCOPED_TRACE(unroll);
    const api::RunReport a = api::run_built(
        build_axpy(AxpyVariant::kChained, {.n = 240, .unroll = unroll}));
    EXPECT_TRUE(a.ok) << a.error;
    const api::RunReport d = api::run_built(
        build_dot(DotVariant::kChained, {.n = 240, .unroll = unroll}));
    EXPECT_TRUE(d.ok) << d.error;
  }
  // unroll 6 needs a 5-deep FPU (capacity 6).
  sim::SimConfig cfg;
  cfg.fpu_depth = 5;
  const api::RunReport d = api::run_built(
      build_dot(DotVariant::kChained, {.n = 240, .unroll = 6}), cfg);
  EXPECT_TRUE(d.ok) << d.error;
}

} // namespace
} // namespace sch::kernels
