// Unified execution-engine coverage: request resolution across the three
// workload forms, sync/async parity, deterministic submit() ordering under 1
// vs N worker threads, the kBoth lockstep cross-check (a divergence surfaces
// as a failed RunReport, never an abort), SimConfig validation at the
// engine and simulator layers, observer callbacks, and a golden test that
// pins the versioned RunReport JSON schema.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "api/engine.hpp"
#include "asm/assembler.hpp"
#include "kernels/vecop.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"

namespace sch::api {
namespace {

Program prog(std::string_view src) {
  auto r = assembler::assemble(src);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

// --- request resolution ------------------------------------------------------

TEST(Engine, RegistryWorkloadRuns) {
  const RunReport r = run(RunRequest::for_kernel("vecop", "chained", {{"n", 64}}));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.name, "vecop/chained");
  EXPECT_EQ(r.kernel, "vecop");
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(r.mismatches, 0u);
}

TEST(Engine, PrebuiltWorkloadRuns) {
  const kernels::BuiltKernel k =
      kernels::build_vecop(kernels::VecopVariant::kChained, {.n = 64});
  const RunReport r = run(RunRequest::for_built(k));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.name, k.name);
  EXPECT_EQ(r.regs.chained_regs, k.regs.chained_regs);
  EXPECT_EQ(r.useful_flops, k.useful_flops);
}

TEST(Engine, RawProgramWorkloadRuns) {
  const RunReport r = run(RunRequest::for_program(prog(R"(
      li a0, 7
      ecall
  )"), "tiny"));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.name, "tiny");
  EXPECT_GT(r.cycles, 0u);
}

TEST(Engine, UnknownKernelFailsReportNotProcess) {
  const RunReport r = run(RunRequest::for_kernel("warpdrive", "turbo"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown kernel"), std::string::npos) << r.error;
}

TEST(Engine, BadSizesFailReportNotProcess) {
  // n=63 violates the unroll-multiple constraint inside the builder.
  const RunReport r = run(RunRequest::for_kernel("vecop", "chained", {{"n", 63}}));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("vecop"), std::string::npos) << r.error;
}

TEST(Engine, EmptyRequestFails) {
  const RunReport r = run(RunRequest{});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no workload"), std::string::npos) << r.error;
}

// --- engine selection --------------------------------------------------------

TEST(Engine, IssEngineCountsInstructions) {
  const kernels::BuiltKernel k =
      kernels::build_vecop(kernels::VecopVariant::kChained, {.n = 64});
  const RunReport r = run(RunRequest::for_built(k, EngineSel::kIss));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.iss_instructions, 0u);
  EXPECT_EQ(r.cycles, 0u);  // the cycle engine did not run
}

TEST(Engine, BothEnginesAgreeOnRealKernel) {
  const kernels::BuiltKernel k =
      kernels::build_vecop(kernels::VecopVariant::kChainedFrep, {.n = 64});
  const RunReport r = run(RunRequest::for_built(k, EngineSel::kBoth));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.iss_instructions, 0u);
  EXPECT_EQ(r.lockstep_mismatches, 0u);
}

TEST(Engine, LockstepMismatchSurfacesAsFailedReport) {
  // The cycle CSR is the one architecturally-visible point where the two
  // engines legitimately diverge (the ISS exposes instret as a proxy), so a
  // program that captures it into a register forces a lockstep mismatch.
  RunRequest request = RunRequest::for_program(prog(R"(
      csrr a0, cycle
      ecall
  )"), "cycle_csr", EngineSel::kBoth);
  const RunReport r = run(request);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.lockstep_mismatches, 0u);
  EXPECT_NE(r.error.find("lockstep divergence"), std::string::npos) << r.error;
}

// --- config validation -------------------------------------------------------

TEST(Engine, InvalidConfigFailsReport) {
  const struct {
    void (*mutate)(sim::SimConfig&);
    const char* what;
  } cases[] = {
      {[](sim::SimConfig& c) { c.fpu_depth = 0; }, "fpu_depth"},
      {[](sim::SimConfig& c) { c.fp_queue_depth = 0; }, "fp_queue_depth"},
      {[](sim::SimConfig& c) { c.seq_buffer_depth = 0; }, "seq_buffer_depth"},
      {[](sim::SimConfig& c) { c.tcdm.num_banks = 0; }, "num_banks"},
  };
  for (const auto& test_case : cases) {
    RunRequest request = RunRequest::for_kernel("vecop", "chained", {{"n", 64}});
    test_case.mutate(request.config);
    const RunReport r = run(request);
    EXPECT_FALSE(r.ok) << test_case.what;
    EXPECT_NE(r.error.find(test_case.what), std::string::npos) << r.error;
  }
}

TEST(Engine, SimulatorConstructorRejectsInvalidConfig) {
  Memory mem;
  sim::SimConfig cfg;
  cfg.fpu_depth = 0;
  EXPECT_THROW(sim::Simulator(prog("ecall"), mem, cfg), std::invalid_argument);
}

TEST(Engine, SimConfigValidateMessages) {
  sim::SimConfig ok;
  EXPECT_TRUE(ok.validate().is_ok());
  sim::SimConfig bad;
  bad.seq_buffer_depth = 0;
  EXPECT_FALSE(bad.validate().is_ok());
  EXPECT_NE(bad.validate().message().find("seq_buffer_depth"), std::string::npos);
}

// --- async submission --------------------------------------------------------

std::vector<RunRequest> determinism_batch() {
  std::vector<RunRequest> requests;
  requests.push_back(RunRequest::for_kernel("vecop", "baseline", {{"n", 64}}));
  requests.push_back(RunRequest::for_kernel("vecop", "chained", {{"n", 64}}));
  requests.push_back(RunRequest::for_kernel("dot", "chained", {{"n", 64}}));
  requests.push_back(RunRequest::for_kernel("axpy", "chained", {{"n", 64}}));
  requests.push_back(RunRequest::for_kernel("gemv", "chained", {}));
  requests.push_back(RunRequest::for_kernel("vecop", "chained", {{"n", 63}})); // fails
  for (RunRequest& r : requests) r.engine = EngineSel::kBoth;
  return requests;
}

TEST(Engine, SubmitReportOrderIsDeterministicAcrossThreadCounts) {
  Engine serial(EngineConfig{.threads = 1});
  Engine parallel(EngineConfig{.threads = 4});
  const std::vector<RunReport> a = serial.run_batch(determinism_batch());
  const std::vector<RunReport> b = parallel.run_batch(determinism_batch());
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].name);
    // Every field except host wall-clock must be bit-identical.
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].ok, b[i].ok);
    EXPECT_EQ(a[i].error, b[i].error);
    EXPECT_EQ(a[i].cycles, b[i].cycles);
    EXPECT_EQ(a[i].perf.total_retired(), b[i].perf.total_retired());
    EXPECT_EQ(a[i].perf.fpu_ops, b[i].perf.fpu_ops);
    EXPECT_EQ(a[i].perf.stall_fp_raw, b[i].perf.stall_fp_raw);
    EXPECT_EQ(a[i].iss_instructions, b[i].iss_instructions);
    EXPECT_EQ(a[i].mismatches, b[i].mismatches);
    EXPECT_EQ(a[i].lockstep_mismatches, b[i].lockstep_mismatches);
    EXPECT_EQ(a[i].tcdm_reads, b[i].tcdm_reads);
    EXPECT_EQ(a[i].tcdm_writes, b[i].tcdm_writes);
    EXPECT_EQ(a[i].tcdm_conflicts, b[i].tcdm_conflicts);
    EXPECT_EQ(a[i].fpu_utilization, b[i].fpu_utilization);
    EXPECT_EQ(a[i].energy.power_mw, b[i].energy.power_mw);
    EXPECT_EQ(a[i].useful_flops, b[i].useful_flops);
    // JSON serialization (minus wall_s, the last member) is bit-identical.
    std::string ja = a[i].to_json().dump();
    std::string jb = b[i].to_json().dump();
    ja.erase(ja.find("\"wall_s\""));
    jb.erase(jb.find("\"wall_s\""));
    EXPECT_EQ(ja, jb);
  }
  // One failing job never aborts the batch.
  EXPECT_FALSE(a.back().ok);
  EXPECT_TRUE(a.front().ok) << a.front().error;
}

TEST(Engine, SubmitMatchesSyncRun) {
  Engine engine(EngineConfig{.threads = 2});
  RunRequest request = RunRequest::for_kernel("vecop", "chained", {{"n", 64}});
  const RunReport sync = engine.run(request);
  auto future = engine.submit(std::move(request));
  const RunReport async = future.get();
  EXPECT_EQ(sync.cycles, async.cycles);
  EXPECT_EQ(sync.ok, async.ok);
  EXPECT_EQ(sync.perf.total_retired(), async.perf.total_retired());
}

// --- observers ---------------------------------------------------------------

TEST(Engine, ObserverSeesEveryCycleAndTheHalt) {
  struct Probe : Observer {
    u64 cycles = 0;
    u64 retired = 0;
    int starts = 0;
    int halts = 0;
    bool saw_memory = false;
    void on_run_start(const RunRequest&, const std::string&) override { ++starts; }
    void on_cycle(const sim::Simulator&) override { ++cycles; }
    void on_retire(const sim::Simulator&, u64 n) override { retired += n; }
    void on_halt(const RunReport&, const sim::Simulator* simulator,
                 const Memory* memory) override {
      ++halts;
      saw_memory = memory != nullptr && simulator != nullptr;
    }
  };
  Probe probe;
  RunRequest request = RunRequest::for_kernel("vecop", "chained", {{"n", 64}});
  request.observers.push_back(&probe);
  const RunReport r = run(request);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(probe.starts, 1);
  EXPECT_EQ(probe.halts, 1);
  EXPECT_EQ(probe.cycles, r.cycles);
  EXPECT_EQ(probe.retired, r.perf.total_retired());
  EXPECT_TRUE(probe.saw_memory);
}

TEST(Engine, ProgressObserverReportsStartAndHalt) {
  std::ostringstream log;
  ProgressObserver progress(log);
  RunRequest good = RunRequest::for_kernel("vecop", "chained", {{"n", 64}});
  good.observers.push_back(&progress);
  const RunReport r = run(good);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(log.str(), "run  vecop/chained\nhalt vecop/chained: " +
                           std::to_string(r.cycles) + " cycles, util " +
                           [&] {
                             std::ostringstream os;
                             os << static_cast<int>(r.fpu_utilization * 1000) / 1000.0;
                             return os.str();
                           }() + "\n");

  RunRequest bad = RunRequest::for_kernel("vecop", "chained", {{"n", 63}});
  bad.observers.push_back(&progress);
  const RunReport rb = run(bad);
  ASSERT_FALSE(rb.ok);
  EXPECT_NE(log.str().find("halt vecop/chained: FAIL: "), std::string::npos)
      << log.str();
}

TEST(Engine, ObservedRunMatchesUnobservedTiming) {
  // Observer fan-out must never perturb the timing model.
  struct Null : Observer {} probe;
  RunRequest plain = RunRequest::for_kernel("gemm", "chained", {});
  RunRequest observed = plain;
  observed.observers.push_back(&probe);
  EXPECT_EQ(run(plain).cycles, run(observed).cycles);
}

// --- JSON schema golden ------------------------------------------------------

TEST(RunReportJson, GoldenSchemaV4) {
  ASSERT_EQ(RunReport::kSchemaVersion, 4);
  RunReport r;
  r.name = "vecop/chained";
  r.kernel = "vecop";
  r.variant = "chained";
  r.engine = EngineSel::kBoth;
  r.ok = true;
  r.cycles = 100;
  r.fpu_utilization = 0.5;
  r.perf.fp_instrs = 60;
  r.perf.int_instrs = 40;
  r.perf.fpu_ops = 50;
  r.perf.stall_fp_raw = 3;
  r.tcdm_reads = 7;
  r.tcdm_writes = 5;
  r.tcdm_conflicts = 1;
  r.energy.power_mw = 60.25;
  r.energy.energy_per_cycle_pj = 54.5;
  r.energy.fpu_ops_per_joule = 0.5;
  r.iss_instructions = 90;
  r.useful_flops = 48;
  r.regs.fp_regs_used = 6;
  r.regs.accumulator_regs = 1;
  r.regs.chained_regs = 1;
  r.regs.ssr_regs = 3;
  r.tcdm_out_of_range = 2;
  r.tcdm_top_banks = {{4, 9}, {0, 1}};
  r.dma.transfers = 2;
  r.dma.bytes = 1024;
  r.dma.busy_cycles = 160;
  r.dma.startup_cycles = 100;
  r.dma.tcdm_conflicts = 3;
  r.dma.queue_full_stalls = 1;
  r.dma.achieved_bytes_per_cycle = 6.5;
  r.num_cores = 1;
  RunReport::CoreReport core;
  core.cycles = 100;
  core.fpu_utilization = 0.5;
  core.perf = r.perf;
  r.cores.push_back(core);
  r.wall_s = 0.25;
  const std::string golden =
      R"({"schema":4,"name":"vecop/chained","kernel":"vecop","variant":"chained",)"
      R"("engine":"both","ok":true,"cycles":100,"retired":100,"fpu_ops":50,)"
      R"("fpu_utilization":0.5,"useful_flops":48,"iss_instructions":90,)"
      R"("mismatches":0,"lockstep_mismatches":0,"stalls":{"fp_raw":3,"fp_waw":0,)"
      R"("chain_empty":0,"chain_full":0,"ssr_empty":0,"ssr_wfull":0,"fpu_busy":0,)"
      R"("fp_lsu":0,"offload_full":0,"int_raw":0,"int_lsu":0,"csr_barrier":0,)"
      R"("dma_full":0,"branch_bubbles":0},"tcdm":{"reads":7,"writes":5,)"
      R"("conflicts":1,"out_of_range":2,"top_banks":[{"bank":4,"conflicts":9},)"
      R"({"bank":0,"conflicts":1}]},"dma":{"transfers":2,"bytes":1024,)"
      R"("busy_cycles":160,"startup_cycles":100,"tcdm_conflicts":3,)"
      R"("queue_full_stalls":1,"achieved_bytes_per_cycle":6.5},)"
      R"("num_cores":1,"cores":[{"hart":0,)"
      R"("cycles":100,"retired":100,"fpu_ops":50,"fpu_utilization":0.5,)"
      R"("stalls":{"fp_raw":3,"fp_waw":0,"chain_empty":0,"chain_full":0,)"
      R"("ssr_empty":0,"ssr_wfull":0,"fpu_busy":0,"fp_lsu":0,"offload_full":0,)"
      R"("int_raw":0,"int_lsu":0,"csr_barrier":0,"dma_full":0,)"
      R"("branch_bubbles":0}}],)"
      R"("energy":{"power_mw":60.25,"energy_per_cycle_pj":54.5,)"
      R"("fpu_ops_per_joule":0.5},"regs":{"fp_used":6,"accumulator":1,)"
      R"("chained":1,"ssr":3},"wall_s":0.25})";
  EXPECT_EQ(r.to_json().dump(), golden);
  // An ok row must not carry a failure section.
  EXPECT_EQ(r.to_json().get("failure"), nullptr);
  // Failed reports additionally carry the error message and the structured
  // v4 failure section (kind/hart/pc/cycle).
  r.ok = false;
  r.error = "boom";
  r.failure.kind = FailureKind::kDeadlock;
  r.failure.hart = 2;
  r.failure.pc = 0x80000010;
  r.failure.cycle = 12345;
  const Json j = r.to_json();
  ASSERT_NE(j.get("error"), nullptr);
  EXPECT_EQ(j.get("error")->as_string(), "boom");
  const Json* fj = j.get("failure");
  ASSERT_NE(fj, nullptr);
  ASSERT_NE(fj->get("kind"), nullptr);
  EXPECT_EQ(fj->get("kind")->as_string(), "deadlock");
  EXPECT_EQ(fj->get("hart")->as_i64(), 2);
  EXPECT_EQ(fj->get("pc")->as_i64(), 0x80000010);
  EXPECT_EQ(fj->get("cycle")->as_i64(), 12345);
}

TEST(RunReportJson, FailureKindNamesCoverTaxonomy) {
  EXPECT_STREQ(failure_kind_name(FailureKind::kNone), "none");
  EXPECT_STREQ(failure_kind_name(FailureKind::kValidation), "validation");
  EXPECT_STREQ(failure_kind_name(FailureKind::kBusError), "bus_error");
  EXPECT_STREQ(failure_kind_name(FailureKind::kDeadlock), "deadlock");
  EXPECT_STREQ(failure_kind_name(FailureKind::kLockstepMismatch),
               "lockstep_mismatch");
  EXPECT_STREQ(failure_kind_name(FailureKind::kGoldenMismatch),
               "golden_mismatch");
  EXPECT_STREQ(failure_kind_name(FailureKind::kBudgetExceeded),
               "budget_exceeded");
  EXPECT_STREQ(failure_kind_name(FailureKind::kInternal), "internal");
}

TEST(RunReportJson, EngineNamesRoundTrip) {
  for (EngineSel sel : {EngineSel::kIss, EngineSel::kCycle, EngineSel::kBoth}) {
    EngineSel parsed;
    ASSERT_TRUE(parse_engine(engine_name(sel), parsed));
    EXPECT_EQ(parsed, sel);
  }
  EngineSel out;
  EXPECT_FALSE(parse_engine("warp", out));
}

} // namespace
} // namespace sch::api
