// Energy-model unit tests: accounting arithmetic, breakdown consistency,
// calibration band, and activity collection from finished runs.
#include <gtest/gtest.h>

#include "energy/activity.hpp"
#include "energy/energy_model.hpp"
#include "api/engine.hpp"
#include "kernels/stencil.hpp"
#include "kernels/vecop.hpp"

namespace sch::energy {
namespace {

TEST(EnergyModel, ZeroActivityGivesBaseAndStaticOnly) {
  sim::PerfCounters perf;
  perf.cycles = 1000;
  const EnergyReport r = evaluate(perf, {});
  EXPECT_GT(r.breakdown.base_pj, 0.0);
  EXPECT_GT(r.breakdown.static_pj, 0.0);
  EXPECT_EQ(r.breakdown.fpu_pj, 0.0);
  EXPECT_EQ(r.breakdown.tcdm_pj, 0.0);
  EXPECT_DOUBLE_EQ(r.breakdown.total_pj,
                   r.breakdown.base_pj + r.breakdown.static_pj);
  // Idle power = base + static.
  EnergyConfig cfg;
  EXPECT_NEAR(r.power_mw, cfg.e_cycle_base_pj + cfg.p_static_mw, 1e-9);
}

TEST(EnergyModel, BreakdownSumsToTotal) {
  sim::PerfCounters perf;
  perf.cycles = 5000;
  perf.fpu_ops = 4000;
  perf.fp_mac_ops = 4000;
  perf.fp_instrs = 4200;
  perf.int_instrs = 700;
  perf.offloads = 4200;
  perf.int_alu_ops = 500;
  perf.branches = 100;
  perf.rf_fp_reads = 8000;
  perf.rf_fp_writes = 4000;
  ActivityCounts act;
  act.tcdm_reads = 4500;
  act.tcdm_writes = 300;
  act.ssr_elements = 9000;
  act.chain_ops = 8000;
  act.seq_replays = 3000;
  const EnergyReport r = evaluate(perf, act);
  const EnergyBreakdown& b = r.breakdown;
  EXPECT_NEAR(b.total_pj,
              b.base_pj + b.static_pj + b.int_core_pj + b.fpu_pj + b.tcdm_pj +
                  b.rf_pj + b.ssr_pj + b.chain_pj,
              1e-6);
  EXPECT_GT(r.fpu_ops_per_joule, 0.0);
}

TEST(EnergyModel, PowerScalesWithFrequency) {
  sim::PerfCounters perf;
  perf.cycles = 1000;
  perf.fp_mac_ops = 900;
  EnergyConfig base_cfg;
  EnergyConfig half = base_cfg;
  half.f_clk_hz = 5e8;
  const EnergyReport full = evaluate(perf, {}, base_cfg);
  const EnergyReport slow = evaluate(perf, {}, half);
  // Exact relation: dynamic power scales with frequency; static power is a
  // constant floor.
  EXPECT_NEAR(slow.power_mw - half.p_static_mw,
              (full.power_mw - base_cfg.p_static_mw) / 2.0, 1e-9);
}

TEST(EnergyModel, ChainOpsCheaperThanRfTraffic) {
  // The extension's selling point: a chain pop+push must cost less than the
  // RF read+write pair it replaces.
  const EnergyConfig cfg;
  EXPECT_LT(2 * cfg.e_chain_op_pj,
            cfg.e_rf_fp_read_pj + cfg.e_rf_fp_write_pj);
}

TEST(EnergyModel, CalibrationBand) {
  // Any stencil variant must land in the paper's measured power envelope
  // (58-64 mW) at the default operating point.
  const auto k = kernels::build_stencil(kernels::StencilKind::kBox3d1r,
                                        kernels::StencilVariant::kChaining, {});
  const auto r = api::run(api::RunRequest::for_built(k));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.energy.power_mw, 55.0);
  EXPECT_LT(r.energy.power_mw, 67.0);
}

TEST(EnergyModel, ActivityCollectionMatchesStats) {
  const auto k = kernels::build_vecop(kernels::VecopVariant::kChained, {.n = 64});
  Memory mem;
  sim::Simulator s(k.program, mem);
  ASSERT_EQ(s.run(), HaltReason::kEcall) << s.error();
  const ActivityCounts a = collect_activity(s);
  EXPECT_EQ(a.tcdm_reads, s.tcdm().stats().reads);
  EXPECT_EQ(a.tcdm_writes, s.tcdm().stats().writes);
  EXPECT_EQ(a.chain_ops,
            s.fp().chain().stats().pushes + s.fp().chain().stats().pops);
  // 64 elements: 64 pushes + 64 pops.
  EXPECT_EQ(a.chain_ops, 128u);
}

TEST(EnergyModel, ReportFormatsAllCategories) {
  sim::PerfCounters perf;
  perf.cycles = 100;
  const std::string text = format_report(evaluate(perf, {}));
  for (const char* needle : {"base/clock", "static", "int core", "fpu", "tcdm",
                             "reg files", "ssr", "chain/seq", "total", "power"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

} // namespace
} // namespace sch::energy
