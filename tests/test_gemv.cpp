// GEMV extension-workload tests: both variants validate bit-exactly on both
// engines; chaining collapses the register cost and the FREP body.
#include <gtest/gtest.h>

#include "kernels/gemv.hpp"
#include "api/engine.hpp"

namespace sch::kernels {
namespace {


class GemvVariants : public ::testing::TestWithParam<GemvVariant> {};

TEST_P(GemvVariants, ValidatesOnBothEngines) {
  for (const GemvParams p : {GemvParams{.m = 8, .n = 5},
                             GemvParams{.m = 32, .n = 24},
                             GemvParams{.m = 4, .n = 1}}) {
    const BuiltKernel k = build_gemv(GetParam(), p);
    const api::RunReport ir = api::run_built_iss(k);
    EXPECT_TRUE(ir.ok) << p.m << "x" << p.n << ": " << ir.error;
    const api::RunReport sr = api::run_built(k);
    EXPECT_TRUE(sr.ok) << p.m << "x" << p.n << ": " << sr.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Both, GemvVariants,
                         ::testing::Values(GemvVariant::kUnrolledAcc,
                                           GemvVariant::kChained),
                         [](const auto& info) {
                           return info.param == GemvVariant::kUnrolledAcc
                                      ? std::string("unrolled")
                                      : std::string("chained");
                         });

TEST(Gemv, ChainingSavesRegistersAtEqualThroughput) {
  const GemvParams p{.m = 64, .n = 32};
  const BuiltKernel ku = build_gemv(GemvVariant::kUnrolledAcc, p);
  const BuiltKernel kc = build_gemv(GemvVariant::kChained, p);
  const api::RunReport ru = api::run_built(ku);
  const api::RunReport rc = api::run_built(kc);
  ASSERT_TRUE(ru.ok) << ru.error;
  ASSERT_TRUE(rc.ok) << rc.error;
  // Same throughput within 2%...
  const double ratio = static_cast<double>(rc.cycles) / static_cast<double>(ru.cycles);
  EXPECT_LT(ratio, 1.02);
  EXPECT_GT(ratio, 0.98);
  // ...at a quarter of the accumulator registers.
  EXPECT_EQ(ku.regs.accumulator_regs, 4u);
  EXPECT_EQ(kc.regs.accumulator_regs, 1u);
  EXPECT_EQ(ku.regs.fp_regs_used - kc.regs.fp_regs_used, 3u);
  EXPECT_GT(rc.fpu_utilization, 0.9);
}

TEST(Gemv, RejectsBadShapes) {
  EXPECT_THROW(build_gemv(GemvVariant::kChained, {.m = 6, .n = 4}),
               std::invalid_argument);
  EXPECT_THROW(build_gemv(GemvVariant::kChained, {.m = 8, .n = 0}),
               std::invalid_argument);
}

} // namespace
} // namespace sch::kernels
