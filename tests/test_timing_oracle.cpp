// Timing-oracle matrix: the cycle count of EVERY registry kernel x variant
// at 1 and 4 cluster cores is pinned against a committed golden file
// (tests/golden/timing_oracle.json). The cycle engine's reports are
// bit-identical across hosts, so any drift here is a real timing change --
// this is the backstop that lets the host-speed fast paths (threaded
// dispatch, bank-mask arbitration, DMA-startup fast-forward) evolve while
// proving the modeled microarchitecture never moved.
//
// Updating after an INTENDED timing change:
//   SCH_UPDATE_TIMING_ORACLE=1 ./sch_tests --gtest_filter='TimingOracle.*'
// rewrites the golden in the source tree; commit it together with the
// change that moved the numbers and explain the delta in the PR.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "kernels/registry.hpp"
#include "scenario/json.hpp"

namespace sch::api {
namespace {

#ifdef SCH_GOLDEN_DIR

constexpr const char* kGoldenPath = SCH_GOLDEN_DIR "/timing_oracle.json";
const u32 kCoreCounts[] = {1, 4};

struct Row {
  std::string kernel;
  std::string variant;
  u32 cores;
  bool ok;
  u64 cycles;
};

std::string row_key(const std::string& kernel, const std::string& variant,
                    u32 cores) {
  return kernel + "/" + variant + "@" + std::to_string(cores);
}

/// Run the full matrix on the cycle engine. Deterministic: registry order
/// is name-sorted and reports are bit-identical across hosts.
std::vector<Row> run_matrix() {
  std::vector<Row> rows;
  for (const kernels::KernelEntry* entry :
       kernels::Registry::instance().entries()) {
    for (const std::string& variant : entry->variants) {
      for (const u32 cores : kCoreCounts) {
        RunRequest request =
            RunRequest::for_kernel(entry->name, variant, {}, EngineSel::kCycle);
        request.config.num_cores = cores;
        const RunReport report = run(request);
        rows.push_back(
            Row{entry->name, variant, cores, report.ok, report.cycles});
      }
    }
  }
  return rows;
}

scenario::Json to_json(const std::vector<Row>& rows) {
  scenario::Json root = scenario::Json::object();
  root.set("version", 1);
  root.set("description",
           "Pinned cycle counts: every registry kernel x variant at 1 and 4 "
           "cores, default sizes, cycle engine. Regenerate with "
           "SCH_UPDATE_TIMING_ORACLE=1 (see tests/test_timing_oracle.cpp).");
  scenario::Json entries = scenario::Json::array();
  for (const Row& r : rows) {
    scenario::Json e = scenario::Json::object();
    e.set("kernel", r.kernel);
    e.set("variant", r.variant);
    e.set("cores", static_cast<i64>(r.cores));
    e.set("ok", r.ok);
    e.set("cycles", static_cast<i64>(r.cycles));
    entries.push_back(std::move(e));
  }
  root.set("entries", std::move(entries));
  return root;
}

TEST(TimingOracle, EveryKernelVariantCoreCountMatchesGolden) {
  const std::vector<Row> rows = run_matrix();

  if (std::getenv("SCH_UPDATE_TIMING_ORACLE") != nullptr) {
    std::ofstream out(kGoldenPath);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << to_json(rows).dump(2) << "\n";
    GTEST_SKIP() << "golden regenerated at " << kGoldenPath
                 << "; commit it with the timing change";
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.good())
      << "missing golden " << kGoldenPath
      << "; generate with SCH_UPDATE_TIMING_ORACLE=1 and commit it";
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = scenario::Json::parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const scenario::Json& root = parsed.value();
  const scenario::Json* entries = root.get("entries");
  ASSERT_NE(entries, nullptr) << "golden has no \"entries\" array";

  // Index the golden rows; every golden row must be consumed (a removed
  // kernel or variant is a timing-surface change and must update the file).
  std::map<std::string, std::pair<bool, u64>> golden;
  for (const scenario::Json& e : entries->items()) {
    const std::string key = row_key(e.get("kernel")->as_string(),
                                    e.get("variant")->as_string(),
                                    static_cast<u32>(e.get("cores")->as_i64()));
    golden[key] = {e.get("ok")->as_bool(),
                   static_cast<u64>(e.get("cycles")->as_i64())};
  }

  for (const Row& r : rows) {
    const std::string key = row_key(r.kernel, r.variant, r.cores);
    auto it = golden.find(key);
    if (it == golden.end()) {
      ADD_FAILURE() << key << ": not in golden (new kernel/variant? "
                    << "regenerate with SCH_UPDATE_TIMING_ORACLE=1)";
      continue;
    }
    EXPECT_EQ(r.ok, it->second.first) << key << ": ok status drifted";
    EXPECT_EQ(r.cycles, it->second.second)
        << key << ": pinned cycle count drifted (timing change!)";
    golden.erase(it);
  }
  for (const auto& [key, unused] : golden) {
    (void)unused;
    ADD_FAILURE() << key << ": in golden but no longer in the registry "
                  << "(regenerate with SCH_UPDATE_TIMING_ORACLE=1)";
  }
}

#endif // SCH_GOLDEN_DIR

} // namespace
} // namespace sch::api
